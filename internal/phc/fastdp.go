package phc

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// SolveSwitchFast is the pointer-technique variant of SolveSwitch the
// paper alludes to ("the runtime can be further improved with pointer
// techniques").  The plain DP scans, for every segment end e, all
// starts s < e while growing the union U(s,e).  Two observations cut
// that work:
//
//  1. As s decreases the union can change at most |X| times, and once
//     it saturates at the full requirement support of the prefix it
//     never changes again: every start below the saturation point sees
//     the same per-step size σ*.  For those starts
//
//     min_s ( D[s] + W + σ*·(e-s) )  =  W + σ*·e + min_s ( D[s] − σ*·s ),
//
//     and min_s (D[s] − σ*·s) over a prefix is maintained incrementally
//     in O(1) per step because σ* = |support| is a constant of the
//     instance.
//
//  2. The saturation point for end e is the smallest s such that every
//     support switch occurs in c_s..c_e — maintained with last-occurrence
//     pointers (hence the name): satPoint(e) = min over support switches
//     x of lastOcc_x(e), updated in O(|c_e|) as e advances.
//
// The explicit scan then only covers s from e-1 down to the saturation
// point, which is short whenever requirements revisit their support
// quickly (typical for looping computations).  Worst case the scan
// degenerates to the plain O(n²) DP; the result is always identical
// (property-tested against SolveSwitch).
func SolveSwitchFast(ctx context.Context, ins *model.SwitchInstance) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}

	// Support = union of all requirements; σ* = |support|.
	support := bitset.New(ins.Universe)
	for _, r := range ins.Reqs {
		support.UnionWith(r)
	}
	sigma := model.Cost(support.Count())
	supportMembers := support.Members()

	// lastOcc[x] = largest step index ≤ current e containing switch x
	// (-1 if none yet).  satPoint(e) = min over support switches of
	// lastOcc (or -1 while some support switch has not occurred yet —
	// then no start saturates).
	lastOcc := make([]int, ins.Universe)
	for i := range lastOcc {
		lastOcc[i] = -1
	}

	d := make([]model.Cost, n+1)
	parent := make([]int, n+1)
	// prefMin[s] = min over s' ≤ s of d[s'] − σ*·s', with argmin.
	prefMin := make([]model.Cost, n+1)
	prefArg := make([]int, n+1)
	prefMin[0] = d[0] // d[0] − σ*·0
	prefArg[0] = 0

	var stats solve.Stats
	u := bitset.New(ins.Universe)
	for e := 1; e <= n; e++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return nil, err
		}
		// Advance the last-occurrence pointers with step e-1.
		ins.Reqs[e-1].ForEach(func(x int) { lastOcc[x] = e - 1 })
		sat := n // no saturated region by default
		if sigma > 0 {
			sat = n
			ok := true
			for _, x := range supportMembers {
				if lastOcc[x] < 0 {
					ok = false
					break
				}
				if lastOcc[x] < sat {
					sat = lastOcc[x]
				}
			}
			if !ok {
				sat = -1 // not all support switches seen yet
			}
		} else {
			sat = 0 // empty support: every start is "saturated" at σ*=0
		}

		best := infCost
		bestS := 0
		// Saturated region: s ≤ sat, all with per-step size σ*.
		if sat >= 0 && sat <= e-1 {
			stats.StatesExpanded++
			// The pointer technique collapses the saturated starts
			// into one prefix-minimum lookup.
			stats.CandidatesPruned += int64(sat)
			if c := prefMin[sat] + ins.W + sigma*model.Cost(e); c < best {
				best = c
				bestS = prefArg[sat]
			}
		}
		// Explicit scan above the saturation point.
		u.Clear()
		low := sat + 1
		if sat < 0 {
			low = 0
		}
		for s := e - 1; s >= low; s-- {
			u.UnionWith(ins.Reqs[s])
			c := d[s] + ins.W + model.Cost(u.Count())*model.Cost(e-s)
			stats.StatesExpanded++
			if c < best {
				best = c
				bestS = s
			}
		}
		d[e] = best
		parent[e] = bestS
		// Extend the prefix minima with index e.
		cand := d[e] - sigma*model.Cost(e)
		if cand < prefMin[e-1] {
			prefMin[e] = cand
			prefArg[e] = e
		} else {
			prefMin[e] = prefMin[e-1]
			prefArg[e] = prefArg[e-1]
		}
	}

	var starts []int
	for e := n; e > 0; e = parent[e] {
		starts = append(starts, parent[e])
	}
	for i, j := 0, len(starts)-1; i < j; i, j = i+1, j-1 {
		starts[i], starts[j] = starts[j], starts[i]
	}
	seg := model.Segmentation{Starts: starts}
	hs, err := ins.CanonicalHypercontexts(seg)
	if err != nil {
		return nil, err
	}
	check, err := ins.CostWithHypercontexts(seg, hs)
	if err != nil {
		return nil, err
	}
	if check != d[n] {
		return nil, fmt.Errorf("phc: fast DP cost %d disagrees with model cost %d", d[n], check)
	}
	return &Solution{Seg: seg, Hypercontexts: hs, Cost: d[n], Stats: stats}, nil
}
