package phc

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// Solution is a solved single-task schedule: the segmentation (steps
// preceded by a hyperreconfiguration), the hypercontext installed for
// each segment, the total cost under the model that produced it, and
// the run statistics of the producing solver.
type Solution struct {
	Seg           model.Segmentation
	Hypercontexts []bitset.Set
	Cost          model.Cost
	Stats         solve.Stats
}

// infCost is a sentinel larger than any real schedule cost.
const infCost = model.Cost(math.MaxInt64 / 4)

// SolveSwitch computes an optimal schedule for the single-task Switch
// model by dynamic programming over segment ends:
//
//	D[e] = min over s < e of  D[s] + W + |U(s,e)| · (e-s)
//
// where U(s,e) is the union of requirements c_{s+1}..c_e (0-based:
// reqs[s..e)).  Union sizes are maintained incrementally while s scans
// downward, so the total time is O(n² · |X|/64) with O(n) extra memory.
// The returned hypercontexts are canonical (segment unions).  The
// context is checked once per segment end, so cancellation lands
// within O(n) work.
func SolveSwitch(ctx context.Context, ins *model.SwitchInstance) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}

	var stats solve.Stats
	d := make([]model.Cost, n+1)
	parent := make([]int, n+1)
	for e := 1; e <= n; e++ {
		d[e] = infCost
	}
	u := bitset.New(ins.Universe)
	for e := 1; e <= n; e++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return nil, err
		}
		u.Clear()
		// s descends from e-1 to 0; U(s,e) grows monotonically.
		for s := e - 1; s >= 0; s-- {
			u.UnionWith(ins.Reqs[s])
			c := d[s] + ins.W + model.Cost(u.Count())*model.Cost(e-s)
			if c < d[e] {
				d[e] = c
				parent[e] = s
			}
		}
		stats.StatesExpanded += int64(e)
	}

	// Reconstruct segment starts from parent pointers.
	var starts []int
	for e := n; e > 0; e = parent[e] {
		starts = append(starts, parent[e])
	}
	// Reverse into ascending order.
	for i, j := 0, len(starts)-1; i < j; i, j = i+1, j-1 {
		starts[i], starts[j] = starts[j], starts[i]
	}

	seg := model.Segmentation{Starts: starts}
	hs, err := ins.CanonicalHypercontexts(seg)
	if err != nil {
		return nil, fmt.Errorf("phc: internal reconstruction error: %w", err)
	}
	// Cross-check the DP value against the model's own pricing.
	check, err := ins.CostWithHypercontexts(seg, hs)
	if err != nil {
		return nil, fmt.Errorf("phc: internal pricing error: %w", err)
	}
	if check != d[n] {
		return nil, fmt.Errorf("phc: DP cost %d disagrees with model cost %d", d[n], check)
	}
	return &Solution{Seg: seg, Hypercontexts: hs, Cost: d[n], Stats: stats}, nil
}

// BruteForceSwitch enumerates every segmentation (2^(n-1) of them) and
// returns the optimum with canonical hypercontexts.  Reference
// implementation for tests; n is capped at 20.  The context is checked
// every 1024 enumerated masks.
func BruteForceSwitch(ctx context.Context, ins *model.SwitchInstance) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}
	if n > 20 {
		return nil, fmt.Errorf("phc: brute force capped at n=20, got %d", n)
	}
	var stats solve.Stats
	best := infCost
	var bestSeg model.Segmentation
	for mask := 0; mask < 1<<(n-1); mask++ {
		if mask&1023 == 0 {
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
		}
		starts := []int{0}
		for i := 1; i < n; i++ {
			if mask&(1<<(i-1)) != 0 {
				starts = append(starts, i)
			}
		}
		seg := model.Segmentation{Starts: starts}
		c, err := ins.Cost(seg)
		if err != nil {
			return nil, err
		}
		stats.Evaluations++
		if c < best {
			best = c
			bestSeg = model.Segmentation{Starts: append([]int(nil), starts...)}
		}
	}
	hs, err := ins.CanonicalHypercontexts(bestSeg)
	if err != nil {
		return nil, err
	}
	return &Solution{Seg: bestSeg, Hypercontexts: hs, Cost: best, Stats: stats}, nil
}

// Greedy is a fast online heuristic for the Switch model: it extends
// the current segment step by step and cuts whenever finishing the
// current segment and opening a fresh one for the incoming step is
// locally cheaper than absorbing the step:
//
//	cut before step i  iff  |U(s,i-1)|·(i-s) + W + |c_i|  <  |U(s,i)|·(i-s+1).
//
// O(n · |X|/64), no lookahead; used as an ablation baseline against the
// exact DP.
func Greedy(ctx context.Context, ins *model.SwitchInstance) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}
	starts := []int{0}
	u := ins.Reqs[0].Clone()
	segStart := 0
	for i := 1; i < n; i++ {
		merged := model.Cost(u.UnionCount(ins.Reqs[i])) * model.Cost(i-segStart+1)
		split := model.Cost(u.Count())*model.Cost(i-segStart) + ins.W + model.Cost(ins.Reqs[i].Count())
		if split < merged {
			starts = append(starts, i)
			segStart = i
			u = ins.Reqs[i].Clone()
		} else {
			u.UnionWith(ins.Reqs[i])
		}
	}
	seg := model.Segmentation{Starts: starts}
	hs, err := ins.CanonicalHypercontexts(seg)
	if err != nil {
		return nil, err
	}
	c, err := ins.CostWithHypercontexts(seg, hs)
	if err != nil {
		return nil, err
	}
	return &Solution{Seg: seg, Hypercontexts: hs, Cost: c, Stats: solve.Stats{StatesExpanded: int64(n)}}, nil
}

// FixedInterval hyperreconfigures every k steps regardless of the
// requirements — the naive periodic baseline.  k must be positive.
func FixedInterval(ctx context.Context, ins *model.SwitchInstance, k int) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	if k <= 0 {
		return nil, fmt.Errorf("phc: interval must be positive, got %d", k)
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}
	var starts []int
	for i := 0; i < n; i += k {
		starts = append(starts, i)
	}
	seg := model.Segmentation{Starts: starts}
	hs, err := ins.CanonicalHypercontexts(seg)
	if err != nil {
		return nil, err
	}
	c, err := ins.CostWithHypercontexts(seg, hs)
	if err != nil {
		return nil, err
	}
	return &Solution{Seg: seg, Hypercontexts: hs, Cost: c, Stats: solve.Stats{Evaluations: 1}}, nil
}
