package phc

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/model"
)

func reqs(universe int, members ...[]int) []bitset.Set {
	out := make([]bitset.Set, len(members))
	for i, m := range members {
		out[i] = bitset.FromMembers(universe, m...)
	}
	return out
}

func mustSwitch(t *testing.T, universe int, w model.Cost, rs []bitset.Set) *model.SwitchInstance {
	t.Helper()
	ins, err := model.NewSwitchInstance(universe, w, rs)
	if err != nil {
		t.Fatalf("NewSwitchInstance: %v", err)
	}
	return ins
}

func randomInstance(r *rand.Rand, maxUniverse, maxLen int) *model.SwitchInstance {
	universe := 1 + r.Intn(maxUniverse)
	n := 1 + r.Intn(maxLen)
	rs := make([]bitset.Set, n)
	for i := range rs {
		s := bitset.New(universe)
		for b := 0; b < universe; b++ {
			if r.Intn(3) == 0 {
				s.Add(b)
			}
		}
		rs[i] = s
	}
	ins, err := model.NewSwitchInstance(universe, model.Cost(1+r.Intn(6)), rs)
	if err != nil {
		panic(err)
	}
	return ins
}

func TestSolveSwitchEmpty(t *testing.T) {
	sol, err := SolveSwitch(context.Background(), mustSwitch(t, 4, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 || len(sol.Seg.Starts) != 0 {
		t.Fatalf("empty solution = %+v", sol)
	}
}

func TestSolveSwitchNil(t *testing.T) {
	if _, err := SolveSwitch(context.Background(), nil); err == nil {
		t.Fatal("accepted nil instance")
	}
}

func TestSolveSwitchKnownOptimum(t *testing.T) {
	// Two disjoint phases: steps 0-2 use switch 0, steps 3-5 use switch 1.
	// W=2: splitting costs 2+3 + 2+3 = 10; merging costs 2 + 2*6 = 14.
	ins := mustSwitch(t, 2, 2, reqs(2,
		[]int{0}, []int{0}, []int{0},
		[]int{1}, []int{1}, []int{1},
	))
	sol, err := SolveSwitch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 10 {
		t.Fatalf("cost = %d, want 10", sol.Cost)
	}
	if len(sol.Seg.Starts) != 2 || sol.Seg.Starts[1] != 3 {
		t.Fatalf("segmentation = %v, want [0 3]", sol.Seg.Starts)
	}
}

func TestSolveSwitchHighWMerges(t *testing.T) {
	// With a huge W the optimum is a single segment.
	ins := mustSwitch(t, 2, 1000, reqs(2, []int{0}, []int{1}, []int{0}))
	sol, err := SolveSwitch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seg.Starts) != 1 {
		t.Fatalf("expected single segment, got %v", sol.Seg.Starts)
	}
	if sol.Cost != 1000+2*3 {
		t.Fatalf("cost = %d, want 1006", sol.Cost)
	}
}

func TestSolveSwitchTinyWSplitsEverything(t *testing.T) {
	// W=1 and alternating disjoint singletons: split every step.
	ins := mustSwitch(t, 2, 1, reqs(2, []int{0}, []int{1}, []int{0}, []int{1}))
	sol, err := SolveSwitch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seg.Starts) != 4 {
		t.Fatalf("segmentation = %v, want every step", sol.Seg.Starts)
	}
	if sol.Cost != 4*(1+1) {
		t.Fatalf("cost = %d, want 8", sol.Cost)
	}
}

func TestQuickSolveSwitchMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomInstance(r, 6, 9)
		dp, err1 := SolveSwitch(context.Background(), ins)
		bf, err2 := BruteForceSwitch(context.Background(), ins)
		if err1 != nil || err2 != nil {
			return false
		}
		return dp.Cost == bf.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveSwitchBounds(t *testing.T) {
	// Optimal cost lies between the instance lower bound and both
	// baselines.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomInstance(r, 8, 20)
		sol, err := SolveSwitch(context.Background(), ins)
		if err != nil {
			return false
		}
		oneSeg, err := ins.Cost(model.Segmentation{Starts: []int{0}})
		if err != nil {
			return false
		}
		return sol.Cost >= ins.LowerBound() &&
			sol.Cost <= oneSeg &&
			sol.Cost <= ins.EveryStepCost()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGreedyValidAndAboveOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomInstance(r, 8, 20)
		g, err1 := Greedy(context.Background(), ins)
		dp, err2 := SolveSwitch(context.Background(), ins)
		if err1 != nil || err2 != nil {
			return false
		}
		// Greedy is feasible (cost computed by the model) and never
		// beats the exact optimum.
		return g.Cost >= dp.Cost
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFastDPMatchesPlainDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomInstance(r, 8, 30)
		plain, err1 := SolveSwitch(context.Background(), ins)
		fast, err2 := SolveSwitchFast(context.Background(), ins)
		if err1 != nil || err2 != nil {
			return false
		}
		return plain.Cost == fast.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFastDPEdgeCases(t *testing.T) {
	// Empty instance.
	sol, err := SolveSwitchFast(context.Background(), mustSwitch(t, 3, 1, nil))
	if err != nil || sol.Cost != 0 {
		t.Fatalf("empty: %v %+v", err, sol)
	}
	if _, err := SolveSwitchFast(context.Background(), nil); err == nil {
		t.Fatal("accepted nil")
	}
	// All-empty requirements: support is empty, every start saturated.
	ins := mustSwitch(t, 3, 2, reqs(3, nil, nil, nil))
	fast, err := SolveSwitchFast(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SolveSwitch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cost != plain.Cost || fast.Cost != 2 {
		t.Fatalf("all-empty: fast %d plain %d, want 2", fast.Cost, plain.Cost)
	}
	// A support switch that appears only late: no saturation early on.
	ins = mustSwitch(t, 2, 1, reqs(2, []int{0}, []int{0}, []int{0, 1}))
	fast, err = SolveSwitchFast(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	plain, err = SolveSwitch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cost != plain.Cost {
		t.Fatalf("late support: fast %d plain %d", fast.Cost, plain.Cost)
	}
}

func TestFastDPLongLoopingTrace(t *testing.T) {
	// A long periodic requirement sequence: the regime the pointer
	// technique accelerates.  Verify exactness at a size where the
	// plain DP is still tractable.
	period := reqs(6, []int{0, 1}, []int{1, 2}, []int{3}, []int{4, 5}, []int{0})
	var rs []bitset.Set
	for len(rs) < 400 {
		rs = append(rs, period...)
	}
	ins := mustSwitch(t, 6, 7, rs[:400])
	plain, err := SolveSwitch(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SolveSwitchFast(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost != fast.Cost {
		t.Fatalf("fast %d != plain %d", fast.Cost, plain.Cost)
	}
}

func TestFixedInterval(t *testing.T) {
	ins := mustSwitch(t, 2, 2, reqs(2, []int{0}, []int{0}, []int{1}, []int{1}))
	sol, err := FixedInterval(context.Background(), ins, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seg.Starts) != 2 {
		t.Fatalf("segmentation = %v", sol.Seg.Starts)
	}
	// Segments [0,2) union {0}, [2,4) union {1}: 2+2 + 2+2 = 8.
	if sol.Cost != 8 {
		t.Fatalf("cost = %d, want 8", sol.Cost)
	}
	if _, err := FixedInterval(context.Background(), ins, 0); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestBruteForceSwitchCap(t *testing.T) {
	rs := make([]bitset.Set, 21)
	for i := range rs {
		rs[i] = bitset.New(1)
	}
	ins := mustSwitch(t, 1, 1, rs)
	if _, err := BruteForceSwitch(context.Background(), ins); err == nil {
		t.Fatal("accepted n>20")
	}
}

func TestGreedyEmptyAndNil(t *testing.T) {
	sol, err := Greedy(context.Background(), mustSwitch(t, 3, 1, nil))
	if err != nil || sol.Cost != 0 {
		t.Fatalf("empty greedy: %v %+v", err, sol)
	}
	if _, err := Greedy(context.Background(), nil); err == nil {
		t.Fatal("accepted nil instance")
	}
}
