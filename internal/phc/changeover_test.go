package phc

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/model"
)

func TestSolveChangeoverEmpty(t *testing.T) {
	sol, err := SolveChangeover(context.Background(), mustSwitch(t, 3, 1, nil))
	if err != nil || sol.Cost != 0 {
		t.Fatalf("empty changeover: %v %+v", err, sol)
	}
}

func TestSolveChangeoverKnown(t *testing.T) {
	// Single step {0,1}: one segment, cost = W + |{0,1}| (changeover from
	// empty) + 2 (one reconfiguration) = 1+2+2 = 5.
	ins := mustSwitch(t, 2, 1, reqs(2, []int{0, 1}))
	sol, err := SolveChangeover(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 5 {
		t.Fatalf("cost = %d, want 5", sol.Cost)
	}
}

func TestSolveChangeoverPrefersOverlap(t *testing.T) {
	// Phases {0,1} then {1,2}: splitting pays changeover |{0,1}Δ{1,2}|=2;
	// merging pays one big hypercontext {0,1,2} for all steps.
	ins := mustSwitch(t, 3, 1, reqs(3,
		[]int{0, 1}, []int{0, 1}, []int{1, 2}, []int{1, 2},
	))
	sol, err := SolveChangeover(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	// Split: (1+2) + 2*2 + (1+2) + 2*2 = 14.
	// Merge: (1+3) + 3*4 = 16.
	if sol.Cost != 14 {
		t.Fatalf("cost = %d, want 14", sol.Cost)
	}
	if len(sol.Seg.Starts) != 2 || sol.Seg.Starts[1] != 2 {
		t.Fatalf("segmentation = %v, want [0 2]", sol.Seg.Starts)
	}
}

// Property: the candidate-class DP never reports a cost below the true
// optimum (it explores a subset of all schedules) and is exactly optimal
// whenever ExactChangeoverSmall agrees — in practice they agree on all
// tested instances; we assert DP ≥ exact and record equality separately.
func TestQuickChangeoverVsExact(t *testing.T) {
	equal := 0
	total := 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		universe := 1 + r.Intn(5)
		n := 1 + r.Intn(6)
		rs := make([]bitset.Set, n)
		for i := range rs {
			s := bitset.New(universe)
			for b := 0; b < universe; b++ {
				if r.Intn(3) == 0 {
					s.Add(b)
				}
			}
			rs[i] = s
		}
		ins, err := model.NewSwitchInstance(universe, model.Cost(1+r.Intn(4)), rs)
		if err != nil {
			return false
		}
		dp, err1 := SolveChangeover(context.Background(), ins)
		ex, err2 := ExactChangeoverSmall(context.Background(), ins)
		if err1 != nil || err2 != nil {
			return false
		}
		total++
		if dp.Cost == ex.Cost {
			equal++
		}
		return dp.Cost >= ex.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	if equal == 0 {
		t.Fatalf("candidate DP never matched the exact optimum (%d cases)", total)
	}
	t.Logf("changeover DP matched exact optimum on %d/%d instances", equal, total)
}

func TestExactChangeoverSmallCaps(t *testing.T) {
	big := make([]bitset.Set, 11)
	for i := range big {
		big[i] = bitset.New(2)
	}
	ins := mustSwitch(t, 2, 1, big)
	if _, err := ExactChangeoverSmall(context.Background(), ins); err == nil {
		t.Fatal("accepted n > 10")
	}
	wide := mustSwitch(t, 13, 1, reqs(13, []int{0}))
	if _, err := ExactChangeoverSmall(context.Background(), wide); err == nil {
		t.Fatal("accepted universe > 12")
	}
}

func TestChangeoverNil(t *testing.T) {
	if _, err := SolveChangeover(context.Background(), nil); err == nil {
		t.Fatal("accepted nil")
	}
	if _, err := ExactChangeoverSmall(context.Background(), nil); err == nil {
		t.Fatal("accepted nil")
	}
}
