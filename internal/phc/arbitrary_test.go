package phc

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/model"
)

// quadratic is a monotone super-additive cost: |h|².  Models a machine
// whose reconfiguration port saturates with hypercontext size.
func quadratic(h bitset.Set) model.Cost {
	c := model.Cost(h.Count())
	return c * c
}

// cardinality recovers the plain Switch model.
func cardinality(h bitset.Set) model.Cost { return model.Cost(h.Count()) }

func TestSolveArbitraryCostReducesToSwitch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomInstance(r, 5, 10)
		bb, err1 := SolveArbitraryCost(context.Background(), ins, cardinality)
		dp, err2 := SolveSwitch(context.Background(), ins)
		if err1 != nil || err2 != nil {
			return false
		}
		return bb.Cost == dp.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSolveArbitraryMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomInstance(r, 5, 8)
		bb, err1 := SolveArbitraryCost(context.Background(), ins, quadratic)
		bf, err2 := BruteForceArbitraryCost(context.Background(), ins, quadratic)
		if err1 != nil || err2 != nil {
			return false
		}
		return bb.Cost == bf.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveArbitraryQuadraticSplitsMore(t *testing.T) {
	// Quadratic costs punish large hypercontexts, so the optimal
	// quadratic schedule never uses fewer segments than forced and its
	// plain-model twin never costs more than its quadratic pricing.
	ins := mustSwitch(t, 4, 1, reqs(4,
		[]int{0}, []int{1}, []int{2}, []int{3},
	))
	sol, err := SolveArbitraryCost(context.Background(), ins, quadratic)
	if err != nil {
		t.Fatal(err)
	}
	// Splitting everywhere: 4·(1 + 1²) = 8.  Any merge of k steps costs
	// ≥ 1 + k²·k/k = 1+k², strictly worse.
	if sol.Cost != 8 {
		t.Fatalf("cost = %d, want 8", sol.Cost)
	}
	if len(sol.Seg.Starts) != 4 {
		t.Fatalf("segmentation = %v", sol.Seg.Starts)
	}
}

func TestSolveArbitraryValidation(t *testing.T) {
	ins := mustSwitch(t, 2, 1, reqs(2, []int{0}))
	if _, err := SolveArbitraryCost(context.Background(), nil, cardinality); err == nil {
		t.Fatal("accepted nil instance")
	}
	if _, err := SolveArbitraryCost(context.Background(), ins, nil); err == nil {
		t.Fatal("accepted nil cost function")
	}
	long := make([]bitset.Set, 65)
	for i := range long {
		long[i] = bitset.New(1)
	}
	if _, err := SolveArbitraryCost(context.Background(), mustSwitch(t, 1, 1, long), cardinality); err == nil {
		t.Fatal("accepted n > 64")
	}
}

func TestSolveArbitraryEmpty(t *testing.T) {
	sol, err := SolveArbitraryCost(context.Background(), mustSwitch(t, 2, 1, nil), cardinality)
	if err != nil || sol.Cost != 0 {
		t.Fatalf("empty: %v %+v", err, sol)
	}
}

func TestBruteForceArbitraryCaps(t *testing.T) {
	long := make([]bitset.Set, 17)
	for i := range long {
		long[i] = bitset.New(1)
	}
	if _, err := BruteForceArbitraryCost(context.Background(), mustSwitch(t, 1, 1, long), cardinality); err == nil {
		t.Fatal("accepted n > 16")
	}
}
