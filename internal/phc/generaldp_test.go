package phc

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/model"
)

func catalog3() []model.Hypercontext {
	return []model.Hypercontext{
		{Name: "small", Init: 2, PerStep: 1, Sat: bitset.FromMembers(3, 0)},
		{Name: "medium", Init: 4, PerStep: 2, Sat: bitset.FromMembers(3, 0, 1)},
		{Name: "full", Init: 8, PerStep: 5, Sat: bitset.Full(3)},
	}
}

func TestSolveGeneralKnownOptimum(t *testing.T) {
	ins, err := model.NewGeneralInstance(3, catalog3(), []int{0, 0, 0, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveGeneral(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	// Options: medium throughout: 4 + 2*6 = 16.
	// small,small,small,medium,small,small: 2+4+2 inits + 1+1+1+2+1+1 = 15.
	// small until step 3, medium at 3, stay medium: 2+4 + 1*3+2*3 = 15.
	if sol.Cost != 15 {
		t.Fatalf("cost = %d, want 15", sol.Cost)
	}
}

func TestSolveGeneralSingleHypercontext(t *testing.T) {
	hs := []model.Hypercontext{{Name: "only", Init: 3, PerStep: 2, Sat: bitset.Full(1)}}
	ins, err := model.NewGeneralInstance(1, hs, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveGeneral(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 3+3*2 {
		t.Fatalf("cost = %d, want 9", sol.Cost)
	}
}

func TestSolveGeneralEmpty(t *testing.T) {
	hs := []model.Hypercontext{{Name: "h", Init: 1, PerStep: 1, Sat: bitset.Full(1)}}
	ins, err := model.NewGeneralInstance(1, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveGeneral(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Fatalf("empty cost = %d", sol.Cost)
	}
}

func randomGeneral(r *rand.Rand) *model.GeneralInstance {
	nCtx := 1 + r.Intn(4)
	hN := 1 + r.Intn(4)
	hs := make([]model.Hypercontext, hN)
	for k := range hs {
		sat := bitset.New(nCtx)
		for c := 0; c < nCtx; c++ {
			if r.Intn(2) == 0 {
				sat.Add(c)
			}
		}
		hs[k] = model.Hypercontext{
			Name:    string(rune('a' + k)),
			Init:    model.Cost(r.Intn(6)),
			PerStep: model.Cost(r.Intn(5)),
			Sat:     sat,
		}
	}
	// Last hypercontext satisfies everything so all sequences feasible.
	hs[hN-1].Sat = bitset.Full(nCtx)
	n := 1 + r.Intn(6)
	seq := make([]int, n)
	for i := range seq {
		seq[i] = r.Intn(nCtx)
	}
	ins, err := model.NewGeneralInstance(nCtx, hs, seq)
	if err != nil {
		panic(err)
	}
	return ins
}

func TestQuickSolveGeneralMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins := randomGeneral(r)
		dp, err1 := SolveGeneral(context.Background(), ins)
		bf, err2 := BruteForceGeneral(context.Background(), ins)
		if err1 != nil || err2 != nil {
			return false
		}
		return dp.Cost == bf.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func diamondInstance(t *testing.T, seq []int) *dag.Instance {
	t.Helper()
	hs := []model.Hypercontext{
		{Name: "bottom", PerStep: 1, Sat: bitset.FromMembers(3, 0)},
		{Name: "left", PerStep: 2, Sat: bitset.FromMembers(3, 0, 1)},
		{Name: "right", PerStep: 2, Sat: bitset.FromMembers(3, 0, 2)},
		{Name: "top", PerStep: 4, Sat: bitset.Full(3)},
	}
	gen, err := model.NewGeneralInstance(3, hs, seq)
	if err != nil {
		t.Fatal(err)
	}
	g := dag.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	ins, err := dag.NewInstance(gen, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestSolveDAG(t *testing.T) {
	ins := diamondInstance(t, []int{0, 1, 0, 2, 0})
	sol, err := SolveDAG(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	// All hypercontexts have init 5 after DAG validation.
	// Staying in top: 5 + 4*5 = 25.
	// left,left,left,right,right: 5+5 inits + 2*5 = 20.
	// Optimum ≤ 20; check against brute force.
	bf, err := BruteForceGeneral(context.Background(), ins.General)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != bf.Cost {
		t.Fatalf("DAG DP cost %d != brute force %d", sol.Cost, bf.Cost)
	}
}

func TestMinimalSatisfierHeuristic(t *testing.T) {
	ins := diamondInstance(t, []int{0, 1, 0, 2, 0})
	h, err := MinimalSatisfierHeuristic(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveDAG(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cost < opt.Cost {
		t.Fatalf("heuristic %d beats optimum %d", h.Cost, opt.Cost)
	}
	// The heuristic must produce a feasible schedule (Cost validated it).
	if len(h.Schedule.HctxIdx) != 5 {
		t.Fatalf("schedule length = %d", len(h.Schedule.HctxIdx))
	}
}

func TestMinimalSatisfierHeuristicEmpty(t *testing.T) {
	ins := diamondInstance(t, nil)
	h, err := MinimalSatisfierHeuristic(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cost != 0 {
		t.Fatalf("empty heuristic cost = %d", h.Cost)
	}
}
