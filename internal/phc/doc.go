// Package phc solves single-task hyperreconfiguration scheduling — the
// "partition into hypercontexts" (PHC) family of problems: given a
// sequence of context requirements, decide when to hyperreconfigure and
// which hypercontexts to install so the total (hyper)reconfiguration
// time is minimal.
//
// Solvers:
//
//   - SolveSwitch: exact O(n²) dynamic program for the Switch cost
//     model (cost(h) = |h|, init(h) = W).  Polynomial because the
//     optimal hypercontext of a fixed segment is the union of the
//     segment's requirements.
//   - SolveGeneral: exact O(n·|H|) dynamic program for the General cost
//     model with an explicitly enumerated hypercontext catalog.
//   - SolveDAG: the DAG cost model — SolveGeneral specialized to a
//     validated DAG instance (uniform init w, monotone costs).
//   - SolveChangeover: dynamic program for the changeover-cost variant
//     (init = W + |h Δ h'|) over canonical union candidates; exact on
//     the candidate class, a strong heuristic in general (keeping
//     switches alive across segments can occasionally beat every union
//     candidate).  BranchBoundChangeover gives the exact answer on
//     small instances for validation.
//   - SolveArbitraryCost: exact branch-and-bound for the NP-complete
//     variant where cost(h) is an arbitrary monotone set function — the
//     general model with implicit hypercontext set 2^X.
//   - Greedy, FixedInterval: fast heuristics / baselines.
//   - BruteForceSwitch: exhaustive reference optimum (2^(n-1)
//     segmentations) used by the property tests.
package phc
