package phc

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// CostFunc prices an arbitrary hypercontext (a switch subset).  It must
// be monotone — A ⊆ B implies f(A) ≤ f(B) — which makes the canonical
// union hypercontext optimal for any fixed segment and keeps the
// branch-and-bound lower bounds admissible.  cost(h) = |h| recovers the
// plain Switch model; super-additive functions model machines whose
// reconfiguration port saturates.
type CostFunc func(h bitset.Set) model.Cost

// SolveArbitraryCost finds an optimal schedule for the Switch-model
// instance under an arbitrary monotone per-step cost function — the
// NP-complete general-model variant in which the hypercontext set is
// the implicit 2^X.  Exact branch-and-bound over segmentations:
//
//   - nodes are segment starts; a branch extends the current segment to
//     every possible end;
//   - bound: accumulated cost + Σ_{remaining steps} f(c_i) + W (every
//     remaining step pays at least its own requirement by monotonicity,
//     and at least one hyperreconfiguration is still owed).
//
// The Greedy solution seeds the incumbent.  Worst case exponential;
// instances are capped at n ≤ 64.
func SolveArbitraryCost(ctx context.Context, ins *model.SwitchInstance, f CostFunc) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	if f == nil {
		return nil, fmt.Errorf("phc: nil cost function")
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}
	if n > 64 {
		return nil, fmt.Errorf("phc: branch-and-bound capped at n=64, got %d", n)
	}

	// Admissible suffix lower bounds: slb[i] = Σ_{t ≥ i} f(c_t).
	slb := make([]model.Cost, n+1)
	for i := n - 1; i >= 0; i-- {
		slb[i] = slb[i+1] + f(ins.Reqs[i])
	}

	// Seed the incumbent with the greedy segmentation priced under f.
	var stats solve.Stats
	best := infCost
	var bestStarts []int
	if g, err := Greedy(ctx, ins); err == nil {
		if c, err := costUnderF(ins, g.Seg, f); err == nil {
			best = c
			bestStarts = append([]int(nil), g.Seg.Starts...)
		}
	}

	starts := make([]int, 0, n)
	var dfsErr error
	var dfs func(pos int, acc model.Cost)
	dfs = func(pos int, acc model.Cost) {
		if dfsErr != nil {
			return
		}
		stats.StatesExpanded++
		if stats.StatesExpanded&1023 == 0 {
			if err := solve.Checkpoint(ctx); err != nil {
				dfsErr = err
				return
			}
		}
		if pos == n {
			if acc < best {
				best = acc
				bestStarts = append(bestStarts[:0], starts...)
			}
			return
		}
		if acc+ins.W+slb[pos] >= best {
			stats.CandidatesPruned++
			return
		}
		starts = append(starts, pos)
		u := bitset.New(ins.Universe)
		for end := pos + 1; end <= n; end++ {
			u.UnionWith(ins.Reqs[end-1])
			segCost := ins.W + f(u)*model.Cost(end-pos)
			// Recurse only if even the optimistic completion of this
			// branch (suffix lower bound) beats the incumbent.  Later
			// ends stay worth trying: segCost grows with end but
			// slb[end] shrinks.
			if acc+segCost+slb[end] < best {
				dfs(end, acc+segCost)
			} else {
				stats.CandidatesPruned++
			}
		}
		starts = starts[:len(starts)-1]
	}
	dfs(0, 0)
	if dfsErr != nil {
		return nil, dfsErr
	}

	if bestStarts == nil {
		return nil, fmt.Errorf("phc: branch-and-bound found no schedule")
	}
	seg := model.Segmentation{Starts: bestStarts}
	hs, err := ins.CanonicalHypercontexts(seg)
	if err != nil {
		return nil, err
	}
	return &Solution{Seg: seg, Hypercontexts: hs, Cost: best, Stats: stats}, nil
}

// costUnderF prices a segmentation with canonical hypercontexts under
// an arbitrary per-step cost function: Σ_k ( W + f(U_k)·len_k ).
func costUnderF(ins *model.SwitchInstance, seg model.Segmentation, f CostFunc) (model.Cost, error) {
	hs, err := ins.CanonicalHypercontexts(seg)
	if err != nil {
		return 0, err
	}
	segs := seg.Segments(ins.Len())
	var total model.Cost
	for k, se := range segs {
		total += ins.W + f(hs[k])*model.Cost(se[1]-se[0])
	}
	return total, nil
}

// BruteForceArbitraryCost exhausts all segmentations under f; reference
// optimum for tests (n ≤ 16).
func BruteForceArbitraryCost(ctx context.Context, ins *model.SwitchInstance, f CostFunc) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	if f == nil {
		return nil, fmt.Errorf("phc: nil cost function")
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}
	if n > 16 {
		return nil, fmt.Errorf("phc: brute force capped at n=16, got %d", n)
	}
	var stats solve.Stats
	best := infCost
	var bestSeg model.Segmentation
	for mask := 0; mask < 1<<(n-1); mask++ {
		if mask&1023 == 0 {
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
		}
		starts := []int{0}
		for i := 1; i < n; i++ {
			if mask&(1<<(i-1)) != 0 {
				starts = append(starts, i)
			}
		}
		seg := model.Segmentation{Starts: starts}
		c, err := costUnderF(ins, seg, f)
		if err != nil {
			return nil, err
		}
		stats.Evaluations++
		if c < best {
			best = c
			bestSeg = model.Segmentation{Starts: append([]int(nil), starts...)}
		}
	}
	hs, err := ins.CanonicalHypercontexts(bestSeg)
	if err != nil {
		return nil, err
	}
	return &Solution{Seg: bestSeg, Hypercontexts: hs, Cost: best, Stats: stats}, nil
}
