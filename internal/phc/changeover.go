package phc

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/solve"
)

// SolveChangeover schedules a Switch-model instance under the
// changeover-cost variant, where a hyperreconfiguration into h from
// predecessor h' costs W + |h Δ h'| (only difference information is
// uploaded; the machine starts empty).
//
// The solver restricts hypercontexts to the canonical candidate class —
// unions U(a,b) of consecutive requirement runs — and finds the optimal
// schedule within that class by dynamic programming over segments:
//
//	D[a][b] = |U(a,b)|·(b-a+1) + W +
//	          min( |∅ Δ U(0,b)|                       if a = 0,
//	               min_{a'} D[a'][a-1] + |U(a',a-1) Δ U(a,b)| )
//
// O(n³) transitions.  Within the candidate class the result is exact;
// in full generality a schedule may profit from keeping extra switches
// alive across a segment boundary to shrink the symmetric difference,
// so the global optimum can be (rarely, and never by more than the
// saved difference bits) below this value — ExactChangeoverSmall
// verifies the gap on small instances.
func SolveChangeover(ctx context.Context, ins *model.SwitchInstance) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}

	// Precompute interval unions U[a][b] for 0 ≤ a ≤ b < n.
	u := make([][]bitset.Set, n)
	for a := 0; a < n; a++ {
		u[a] = make([]bitset.Set, n)
		acc := bitset.New(ins.Universe)
		for b := a; b < n; b++ {
			acc.UnionWith(ins.Reqs[b])
			u[a][b] = acc.Clone()
		}
	}

	empty := bitset.New(ins.Universe)
	d := make([][]model.Cost, n)
	prev := make([][]int, n) // previous segment's start, -1 for first segment
	for a := range d {
		d[a] = make([]model.Cost, n)
		prev[a] = make([]int, n)
		for b := range d[a] {
			d[a][b] = infCost
			prev[a][b] = -1
		}
	}

	var stats solve.Stats
	for b := 0; b < n; b++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return nil, err
		}
		for a := 0; a <= b; a++ {
			run := model.Cost(u[a][b].Count()) * model.Cost(b-a+1)
			if a == 0 {
				d[a][b] = run + ins.W + model.Cost(empty.SymmetricDifferenceCount(u[a][b]))
				stats.StatesExpanded++
				continue
			}
			for ap := 0; ap < a; ap++ {
				if d[ap][a-1] >= infCost {
					continue
				}
				stats.StatesExpanded++
				c := d[ap][a-1] + ins.W + model.Cost(u[ap][a-1].SymmetricDifferenceCount(u[a][b])) + run
				if c < d[a][b] {
					d[a][b] = c
					prev[a][b] = ap
				}
			}
		}
	}

	best, bestA := infCost, -1
	for a := 0; a < n; a++ {
		if d[a][n-1] < best {
			best, bestA = d[a][n-1], a
		}
	}
	if bestA < 0 {
		return nil, fmt.Errorf("phc: changeover DP found no schedule")
	}

	// Reconstruct starts walking the prev chain backwards.
	var starts []int
	a, b := bestA, n-1
	for a >= 0 {
		starts = append(starts, a)
		pa := prev[a][b]
		b = a - 1
		a = pa
	}
	for i, j := 0, len(starts)-1; i < j; i, j = i+1, j-1 {
		starts[i], starts[j] = starts[j], starts[i]
	}

	seg := model.Segmentation{Starts: starts}
	hs, err := ins.CanonicalHypercontexts(seg)
	if err != nil {
		return nil, err
	}
	check, err := ins.ChangeoverCost(seg, hs)
	if err != nil {
		return nil, err
	}
	if check != best {
		return nil, fmt.Errorf("phc: changeover DP cost %d disagrees with model cost %d", best, check)
	}
	return &Solution{Seg: seg, Hypercontexts: hs, Cost: best, Stats: stats}, nil
}

// ExactChangeoverSmall finds the true optimum of the changeover variant
// by exhausting every segmentation and, per segmentation, every choice
// of hypercontexts ⊇ segment union via an inner DP over superset
// assignments.  Exponential in both n and the universe size; inputs are
// capped (n ≤ 10, universe ≤ 12).  Used to validate SolveChangeover.
func ExactChangeoverSmall(ctx context.Context, ins *model.SwitchInstance) (*Solution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	n := ins.Len()
	if n == 0 {
		return &Solution{Seg: model.Segmentation{}, Cost: 0}, nil
	}
	if n > 10 || ins.Universe > 12 {
		return nil, fmt.Errorf("phc: exact changeover capped at n=10, universe=12 (got n=%d, |X|=%d)", n, ins.Universe)
	}

	full := (1 << uint(ins.Universe)) - 1
	maskOf := func(s bitset.Set) int {
		m := 0
		s.ForEach(func(b int) { m |= 1 << uint(b) })
		return m
	}
	popcount := func(m int) int {
		c := 0
		for ; m != 0; m &= m - 1 {
			c++
		}
		return c
	}

	var stats solve.Stats
	best := infCost
	var bestSeg model.Segmentation
	var bestHs []bitset.Set

	for segMask := 0; segMask < 1<<(n-1); segMask++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return nil, err
		}
		starts := []int{0}
		for i := 1; i < n; i++ {
			if segMask&(1<<(i-1)) != 0 {
				starts = append(starts, i)
			}
		}
		seg := model.Segmentation{Starts: starts}
		segs := seg.Segments(n)
		unions := make([]int, len(segs))
		lens := make([]int, len(segs))
		for k, se := range segs {
			m := 0
			for i := se[0]; i < se[1]; i++ {
				m |= maskOf(ins.Reqs[i])
			}
			unions[k] = m
			lens[k] = se[1] - se[0]
		}
		// Inner DP over hypercontext choices: state = previous segment's
		// chosen hypercontext mask.
		type state map[int]model.Cost // mask -> min cost so far
		cur := state{0: 0}            // machine starts empty
		for k := range segs {
			next := state{}
			for prevMask, c := range cur {
				// Enumerate supersets h of unions[k].
				rest := full &^ unions[k]
				for sub := rest; ; sub = (sub - 1) & rest {
					h := unions[k] | sub
					hc := c + ins.W + model.Cost(popcount(prevMask^h)) + model.Cost(popcount(h))*model.Cost(lens[k])
					stats.StatesExpanded++
					if old, ok := next[h]; ok {
						stats.DedupHits++
						if hc < old {
							next[h] = hc
						}
					} else {
						next[h] = hc
					}
					if sub == 0 {
						break
					}
				}
			}
			cur = next
		}
		for _, c := range cur {
			if c < best {
				best = c
				bestSeg = model.Segmentation{Starts: append([]int(nil), starts...)}
			}
		}
	}

	if best >= infCost {
		return nil, fmt.Errorf("phc: exact changeover found no schedule")
	}
	// For the returned solution, report canonical hypercontexts of the
	// best segmentation; Cost carries the true optimum (which may use
	// non-canonical hypercontexts).
	hs, err := ins.CanonicalHypercontexts(bestSeg)
	if err != nil {
		return nil, err
	}
	bestHs = hs
	return &Solution{Seg: bestSeg, Hypercontexts: bestHs, Cost: best, Stats: stats}, nil
}
