package phc

import (
	"context"
	"fmt"

	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/solve"
)

// GeneralSolution is a solved schedule for the explicit-H General (or
// DAG) model: a hypercontext index per step, the total cost, and the
// producing solver's run statistics.
type GeneralSolution struct {
	Schedule model.GeneralSchedule
	Cost     model.Cost
	Stats    solve.Stats
}

// SolveGeneral computes an optimal schedule for the General cost model
// with an explicit hypercontext catalog via dynamic programming:
//
//	D[i][k] = cost(h_k) + min( D[i-1][k],                 // stay
//	                           min_k' D[i-1][k'] + init(h_k) )  // hyperreconfigure
//
// restricted to hypercontexts that satisfy c_i.  The inner minimum over
// k' is shared across k, so each step costs O(|H|) and the whole run
// O(n·|H|).  This shows the problem is polynomial whenever H is part of
// the input; the paper's NP-completeness concerns implicit exponential
// H (see SolveArbitraryCost).
func SolveGeneral(ctx context.Context, ins *model.GeneralInstance) (*GeneralSolution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	n, hN := ins.Len(), len(ins.Hypercontexts)
	if n == 0 {
		return &GeneralSolution{Schedule: model.GeneralSchedule{HctxIdx: nil}, Cost: 0}, nil
	}

	d := make([][]model.Cost, n)
	from := make([][]int, n) // predecessor hypercontext, -1 = stayed
	for i := range d {
		d[i] = make([]model.Cost, hN)
		from[i] = make([]int, hN)
	}

	for k, h := range ins.Hypercontexts {
		if h.Sat.Contains(ins.Seq[0]) {
			d[0][k] = h.Init + h.PerStep
		} else {
			d[0][k] = infCost
		}
		from[0][k] = -2 // start marker
	}

	var stats solve.Stats
	stats.StatesExpanded = int64(hN) // step 0
	for i := 1; i < n; i++ {
		if err := solve.Checkpoint(ctx); err != nil {
			return nil, err
		}
		stats.StatesExpanded += int64(hN)
		// Best predecessor over all hypercontexts (for the
		// hyperreconfigure branch).
		bestPrev, bestPrevIdx := infCost, -1
		for k := 0; k < hN; k++ {
			if d[i-1][k] < bestPrev {
				bestPrev, bestPrevIdx = d[i-1][k], k
			}
		}
		for k, h := range ins.Hypercontexts {
			if !h.Sat.Contains(ins.Seq[i]) {
				d[i][k] = infCost
				continue
			}
			stay := d[i-1][k]
			jump := infCost
			if bestPrevIdx >= 0 {
				jump = bestPrev + h.Init
			}
			if stay <= jump {
				d[i][k] = stay + h.PerStep
				from[i][k] = -1
			} else {
				d[i][k] = jump + h.PerStep
				from[i][k] = bestPrevIdx
			}
		}
	}

	best, bestK := infCost, -1
	for k := 0; k < hN; k++ {
		if d[n-1][k] < best {
			best, bestK = d[n-1][k], k
		}
	}
	if bestK < 0 {
		return nil, fmt.Errorf("phc: no feasible schedule (some context unsatisfiable)")
	}

	idx := make([]int, n)
	k := bestK
	for i := n - 1; i >= 0; i-- {
		idx[i] = k
		switch from[i][k] {
		case -1:
			// stayed in k
		case -2:
			// start
		default:
			k = from[i][k]
		}
	}

	sched := model.GeneralSchedule{HctxIdx: idx}
	check, err := ins.Cost(sched)
	if err != nil {
		return nil, fmt.Errorf("phc: internal reconstruction error: %w", err)
	}
	if check != best {
		return nil, fmt.Errorf("phc: DP cost %d disagrees with model cost %d", best, check)
	}
	return &GeneralSolution{Schedule: sched, Cost: best, Stats: stats}, nil
}

// BruteForceGeneral enumerates all |H|^n schedules; reference optimum
// for tests.  The state space is capped at ~2 million assignments.
func BruteForceGeneral(ctx context.Context, ins *model.GeneralInstance) (*GeneralSolution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	n, hN := ins.Len(), len(ins.Hypercontexts)
	if n == 0 {
		return &GeneralSolution{Cost: 0}, nil
	}
	total := 1
	for i := 0; i < n; i++ {
		total *= hN
		if total > 2_000_000 {
			return nil, fmt.Errorf("phc: brute force state space too large (|H|=%d, n=%d)", hN, n)
		}
	}
	var stats solve.Stats
	idx := make([]int, n)
	best := infCost
	var bestIdx []int
	for iter := 0; iter < total; iter++ {
		if iter&1023 == 0 {
			if err := solve.Checkpoint(ctx); err != nil {
				return nil, err
			}
		}
		stats.Evaluations++
		v := iter
		for i := 0; i < n; i++ {
			idx[i] = v % hN
			v /= hN
		}
		c, err := ins.Cost(model.GeneralSchedule{HctxIdx: idx})
		if err != nil {
			continue // infeasible assignment
		}
		if c < best {
			best = c
			bestIdx = append([]int(nil), idx...)
		}
	}
	if bestIdx == nil {
		return nil, fmt.Errorf("phc: no feasible schedule")
	}
	return &GeneralSolution{Schedule: model.GeneralSchedule{HctxIdx: bestIdx}, Cost: best, Stats: stats}, nil
}

// SolveDAG solves the DAG cost model: the instance's side conditions
// (uniform init w, cost monotone along edges, top hypercontext) were
// validated at construction, so an optimal schedule is the General DP
// on the underlying catalog.  The DAG structure itself guides heuristic
// hypercontext selection elsewhere (minimal satisfiers); for exact
// optimization it only guarantees feasibility.
func SolveDAG(ctx context.Context, ins *dag.Instance) (*GeneralSolution, error) {
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	return SolveGeneral(ctx, ins.General)
}

// MinimalSatisfierHeuristic schedules each step greedily into one of
// the DAG model's minimal satisfiers c(H): it stays in the current
// hypercontext while possible and otherwise jumps to the cheapest
// minimal satisfier of the incoming context.  Linear time after the
// minimal-satisfier precomputation; an ablation baseline for SolveDAG.
func MinimalSatisfierHeuristic(ctx context.Context, ins *dag.Instance) (*GeneralSolution, error) {
	if err := solve.Checkpoint(ctx); err != nil {
		return nil, err
	}
	if ins == nil {
		return nil, fmt.Errorf("phc: nil instance")
	}
	ms, err := ins.MinimalSatisfiers()
	if err != nil {
		return nil, err
	}
	gen := ins.General
	n := gen.Len()
	if n == 0 {
		return &GeneralSolution{Cost: 0}, nil
	}
	idx := make([]int, n)
	cur := -1
	for i := 0; i < n; i++ {
		c := gen.Seq[i]
		if cur >= 0 && gen.Hypercontexts[cur].Sat.Contains(c) {
			idx[i] = cur
			continue
		}
		best, bestK := infCost, -1
		for _, k := range ms[c] {
			if gen.Hypercontexts[k].PerStep < best {
				best, bestK = gen.Hypercontexts[k].PerStep, k
			}
		}
		if bestK < 0 {
			return nil, fmt.Errorf("phc: context %d has no minimal satisfier", c)
		}
		cur = bestK
		idx[i] = cur
	}
	sched := model.GeneralSchedule{HctxIdx: idx}
	cost, err := gen.Cost(sched)
	if err != nil {
		return nil, err
	}
	return &GeneralSolution{Schedule: sched, Cost: cost, Stats: solve.Stats{StatesExpanded: int64(n)}}, nil
}
