// Package machine executes multi-task (hyper)reconfiguration programs
// the way a partially hyperreconfigurable machine would run them: one
// goroutine per task, barrier synchronization between the tasks as
// demanded by the synchronization mode, per-operation validity checking
// (a context can only be installed inside the current hypercontext) and
// cost accounting that matches the cost models of internal/model
// bit-for-bit.
//
// The runtime implements all four synchronization modes through a
// lane-based timeline: every task owns a local clock, a
// barrier-synchronized phase first equalizes all clocks to their
// maximum and then advances them together by the phase's combined cost
// (max of the participants' costs for task-parallel uploads, sum for
// task-sequential), while an unsynchronized phase advances only the
// participating task's own clock.  The machine's total time is the
// final maximum over the lanes (plus the global-init cost W).
//
// The two modes the paper gives closed formulas for fall out as special
// cases, and the tests cross-validate them exactly:
//
//   - model.FullySynchronized reproduces the Section 4.2 formula
//     (= model.MTSwitchInstance.Cost), because all lanes stay equal and
//     each round adds hyper-combine + reconf-combine;
//   - model.NonSynchronized reproduces the Section 4.1 General Multi
//     Task model (window = W + slowest task), because no phase ever
//     synchronizes.
//
// The mixed modes (model.HypercontextSynchronized and
// model.ContextSynchronized) barrier exactly one of the two phases.
// Since Σ_i max_j x ≥ max_j Σ_i x componentwise, a barriered phase can
// only lengthen the timeline: NonSynchronized ≤ mixed ≤
// FullySynchronized for any fixed schedule (property-tested).
package machine

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/model"
)

// Op is one round of a task's program: an optional local (partial)
// hyperreconfiguration followed by one ordinary reconfiguration.
type Op struct {
	// Hyper, when non-nil, installs a new local hypercontext before
	// the reconfiguration (a no-hyperreconfiguration otherwise).
	Hyper *bitset.Set
	// Req is the context requirement of the round's reconfiguration;
	// it must be satisfied by the hypercontext in effect.
	Req bitset.Set
}

// TaskProgram is one task's operation stream.
type TaskProgram struct {
	Name string
	Ops  []Op
}

// RoundCost records one synchronized round's pricing.
type RoundCost struct {
	Hyper  model.Cost
	Reconf model.Cost
}

// Report is the outcome of a run.
type Report struct {
	// Total is the machine's total (hyper)reconfiguration time.
	Total model.Cost
	// Rounds holds per-round costs (fully synchronized runs only).
	Rounds []RoundCost
	// TaskTimes holds per-task totals (non-synchronized runs only).
	TaskTimes []model.Cost
	// Bottleneck is the index of the slowest task (non-synchronized
	// runs only).
	Bottleneck int
}

// barrier is a reusable (cyclic) barrier for n parties.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n parties have arrived, then releases them
// together.  It may be reused for any number of generations.
func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Machine executes task programs under a synchronization mode.
type Machine struct {
	tasks []model.Task
	sync  model.SyncMode
	opt   model.CostOptions
	// W is the global-hyperreconfiguration cost paid once at the start
	// of the window (0 when there are no global resources).
	W model.Cost
	// PublicGlobal is |h^pub| for the synchronized reconfiguration term.
	PublicGlobal int
}

// New builds a machine.  PublicGlobal requires a context-synchronized
// mode (the paper: public global resources exist only then).
func New(tasks []model.Task, syncMode model.SyncMode, opt model.CostOptions, w model.Cost, publicGlobal int) (*Machine, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("machine: need at least one task")
	}
	for _, t := range tasks {
		if t.V <= 0 {
			return nil, fmt.Errorf("machine: task %q needs positive v_j", t.Name)
		}
		if t.Local < 0 {
			return nil, fmt.Errorf("machine: task %q has negative switch count", t.Name)
		}
	}
	if publicGlobal < 0 || w < 0 {
		return nil, fmt.Errorf("machine: negative costs")
	}
	if publicGlobal > 0 && !syncMode.AllowsPublicGlobal() {
		return nil, fmt.Errorf("machine: public global resources require a context-synchronized mode, not %v", syncMode)
	}
	return &Machine{tasks: tasks, sync: syncMode, opt: opt, W: w, PublicGlobal: publicGlobal}, nil
}

// Run executes the programs concurrently (one goroutine per task) and
// returns the cost report.  Programs must supply one per task, in task
// order.  Modes with a barriered phase require equal program lengths;
// every mode requires an initial hyperreconfiguration in each task's
// first op (when it has any ops — fully free-running tasks must have at
// least one, per the paper's n_j ≥ 1 requirement).
func (m *Machine) Run(programs []TaskProgram) (*Report, error) {
	if len(programs) != len(m.tasks) {
		return nil, fmt.Errorf("machine: %d programs for %d tasks", len(programs), len(m.tasks))
	}
	barriered := m.sync.HyperSynchronized() || m.sync.ContextSynchronizedMode()
	// A window in which no task does anything is degenerate but legal:
	// it costs exactly the global hyperreconfiguration.
	allEmpty := true
	for _, p := range programs {
		if len(p.Ops) > 0 {
			allEmpty = false
			break
		}
	}
	if allEmpty {
		return &Report{Total: m.W, TaskTimes: make([]model.Cost, len(programs))}, nil
	}
	rounds := 0
	for j, p := range programs {
		if len(p.Ops) == 0 {
			return nil, fmt.Errorf("machine: task %q must perform at least one local hyperreconfiguration after the global one", p.Name)
		}
		if p.Ops[0].Hyper == nil {
			return nil, fmt.Errorf("machine: task %q must hyperreconfigure in its first round", p.Name)
		}
		if barriered && j > 0 && len(p.Ops) != rounds {
			return nil, fmt.Errorf("machine: %v run needs equal program lengths (%q has %d, %q has %d)",
				m.sync, p.Name, len(p.Ops), programs[0].Name, rounds)
		}
		if len(p.Ops) > rounds {
			rounds = len(p.Ops)
		}
		for oi, op := range p.Ops {
			if op.Hyper != nil && op.Hyper.Universe() != m.tasks[j].Local {
				return nil, fmt.Errorf("machine: task %q op %d hypercontext over universe %d, want %d", p.Name, oi, op.Hyper.Universe(), m.tasks[j].Local)
			}
			if op.Req.Universe() != m.tasks[j].Local {
				return nil, fmt.Errorf("machine: task %q op %d requirement over universe %d, want %d", p.Name, oi, op.Req.Universe(), m.tasks[j].Local)
			}
		}
	}
	return m.runLanes(programs, rounds)
}

// laneSync coordinates one barriered phase: every task publishes its
// lane time, the slowest lane is found, the phase cost is combined
// across participants, and all lanes leave at maxLane + combined cost.
type laneSync struct {
	mu       sync.Mutex
	bar      *barrier
	maxLane  model.Cost
	combined model.Cost
	count    int
	parties  int
	upload   model.UploadMode
}

func newLaneSync(parties int, upload model.UploadMode) *laneSync {
	return &laneSync{bar: newBarrier(parties), parties: parties, upload: upload}
}

// step publishes (lane, cost) and returns the common exit time.
// cost < 0 means the task does not participate in the phase (a
// no-hyperreconfiguration statement); it still waits at the barrier.
func (s *laneSync) step(lane, cost model.Cost) model.Cost {
	s.mu.Lock()
	if s.count == 0 {
		s.maxLane = lane
		s.combined = 0
	} else if lane > s.maxLane {
		s.maxLane = lane
	}
	if cost >= 0 {
		s.combined = s.upload.Combine(s.combined, cost)
	}
	s.count++
	if s.count == s.parties {
		s.count = 0
	}
	s.mu.Unlock()
	s.bar.await()
	s.mu.Lock()
	exit := s.maxLane + s.combined
	s.mu.Unlock()
	s.bar.await() // hold the phase state until everyone has read it
	return exit
}

func (m *Machine) runLanes(programs []TaskProgram, rounds int) (*Report, error) {
	nTasks := len(m.tasks)
	hyperSynced := m.sync.HyperSynchronized()
	reconfSynced := m.sync.ContextSynchronizedMode()

	var (
		hyperSync  = newLaneSync(nTasks, m.opt.HyperUpload)
		reconfSync = newLaneSync(nTasks, m.opt.ReconfUpload)
		lanes      = make([]model.Cost, nTasks)
		taskErrs   = make([]error, nTasks)
		wg         sync.WaitGroup
	)

	for j := range programs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			hctx := bitset.New(m.tasks[j].Local)
			var lane model.Cost
			failed := false
			for r := 0; r < rounds; r++ {
				var op Op
				active := r < len(programs[j].Ops)
				if active {
					op = programs[j].Ops[r]
				}
				// Phase 1: partial hyperreconfigurations.  A cost of -1
				// marks a non-participant (the paper's
				// no-hyperreconfiguration statement): it waits at the
				// barrier but contributes nothing to the combine.
				hyperCost := model.Cost(-1)
				if active && !failed && op.Hyper != nil {
					hctx = *op.Hyper
					hyperCost = m.tasks[j].V
				}
				if hyperSynced {
					lane = hyperSync.step(lane, hyperCost)
				} else if hyperCost >= 0 {
					lane += hyperCost
				}
				// Phase 2: reconfigurations.  Task 0 folds the public
				// global term into its published cost — synchronized
				// reconfigurations always (re)configure the public
				// global resources alongside the tasks.
				reconfCost := model.Cost(-1)
				if active && !failed {
					if !op.Req.IsSubsetOf(hctx) {
						taskErrs[j] = fmt.Errorf("machine: task %q round %d requirement not satisfied by hypercontext", programs[j].Name, r)
						failed = true
					} else {
						reconfCost = model.Cost(hctx.Count())
					}
				}
				if reconfSynced {
					if j == 0 && m.PublicGlobal > 0 {
						pub := model.Cost(m.PublicGlobal)
						switch {
						case reconfCost < 0:
							reconfCost = pub
						case m.opt.ReconfUpload == model.TaskParallel:
							reconfCost = maxCost(reconfCost, pub)
						default:
							reconfCost += pub
						}
					}
					lane = reconfSync.step(lane, reconfCost)
				} else if reconfCost >= 0 {
					lane += reconfCost
				}
			}
			lanes[j] = lane
		}(j)
	}
	wg.Wait()

	for _, err := range taskErrs {
		if err != nil {
			return nil, err
		}
	}
	total, bottleneck := model.Cost(0), 0
	for j, t := range lanes {
		if t > total {
			total, bottleneck = t, j
		}
	}
	rep := &Report{Total: m.W + total, TaskTimes: lanes, Bottleneck: bottleneck}
	if m.sync == model.FullySynchronized {
		rep.Rounds = perRoundCosts(m, programs, rounds)
	}
	return rep, nil
}

// maxCost returns the larger cost.
func maxCost(a, b model.Cost) model.Cost {
	if a > b {
		return a
	}
	return b
}

// perRoundCosts recomputes the per-round cost decomposition of a fully
// synchronized run for reporting (the lanes only carry totals).
func perRoundCosts(m *Machine, programs []TaskProgram, rounds int) []RoundCost {
	out := make([]RoundCost, rounds)
	hctxSize := make([]model.Cost, len(programs))
	for r := 0; r < rounds; r++ {
		var hyper model.Cost
		for j, p := range programs {
			if r < len(p.Ops) && p.Ops[r].Hyper != nil {
				hyper = m.opt.HyperUpload.Combine(hyper, m.tasks[j].V)
				hctxSize[j] = model.Cost(p.Ops[r].Hyper.Count())
			}
		}
		reconf := model.Cost(0)
		if m.opt.ReconfUpload == model.TaskParallel {
			reconf = model.Cost(m.PublicGlobal)
		}
		for j := range programs {
			reconf = m.opt.ReconfUpload.Combine(reconf, hctxSize[j])
		}
		if m.opt.ReconfUpload == model.TaskSequential {
			reconf += model.Cost(m.PublicGlobal)
		}
		out[r] = RoundCost{Hyper: hyper, Reconf: reconf}
	}
	return out
}

// FromSchedule converts a solved model.MTSchedule into executable task
// programs: a hyperreconfiguration op wherever the schedule flags one,
// with the instance's requirements as the reconfiguration contexts.
func FromSchedule(ins *model.MTSwitchInstance, s *model.MTSchedule) ([]TaskProgram, error) {
	if ins == nil || s == nil {
		return nil, fmt.Errorf("machine: nil instance or schedule")
	}
	if err := ins.Validate(s); err != nil {
		return nil, err
	}
	programs := make([]TaskProgram, ins.NumTasks())
	for j := 0; j < ins.NumTasks(); j++ {
		p := TaskProgram{Name: ins.Tasks[j].Name}
		for i := 0; i < ins.Steps(); i++ {
			op := Op{Req: ins.Reqs[j][i]}
			if s.Hyper[j][i] {
				h := s.Hctx[j][i]
				op.Hyper = &h
			}
			p.Ops = append(p.Ops, op)
		}
		programs[j] = p
	}
	return programs, nil
}
