package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/model"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
var sequential = model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}

func set(universe int, members ...int) bitset.Set {
	return bitset.FromMembers(universe, members...)
}

func setPtr(universe int, members ...int) *bitset.Set {
	s := set(universe, members...)
	return &s
}

func twoTasks() []model.Task {
	return []model.Task{
		{Name: "A", Local: 3, V: 2},
		{Name: "B", Local: 2, V: 5},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, model.FullySynchronized, parallel, 0, 0); err == nil {
		t.Fatal("accepted zero tasks")
	}
	bad := []model.Task{{Name: "A", Local: 1, V: 0}}
	if _, err := New(bad, model.FullySynchronized, parallel, 0, 0); err == nil {
		t.Fatal("accepted v=0")
	}
	ok := twoTasks()
	if _, err := New(ok, model.HypercontextSynchronized, parallel, 0, 0); err != nil {
		t.Fatalf("hypercontext-synchronized mode should be supported: %v", err)
	}
	if _, err := New(ok, model.NonSynchronized, parallel, 0, 1); err == nil {
		t.Fatal("accepted public global resources on a non-context-synchronized machine")
	}
	if _, err := New(ok, model.FullySynchronized, parallel, -1, 0); err == nil {
		t.Fatal("accepted negative W")
	}
}

func TestFullySynchronizedCost(t *testing.T) {
	m, err := New(twoTasks(), model.FullySynchronized, parallel, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	programs := []TaskProgram{
		{Name: "A", Ops: []Op{
			{Hyper: setPtr(3, 0, 1), Req: set(3, 0)},
			{Req: set(3, 1)},
			{Hyper: setPtr(3, 2), Req: set(3, 2)},
		}},
		{Name: "B", Ops: []Op{
			{Hyper: setPtr(2, 0), Req: set(2, 0)},
			{Req: set(2, 0)},
			{Req: set(2)},
		}},
	}
	rep, err := m.Run(programs)
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: hyper max(2,5)=5, reconf max(2,1)=2.
	// Round 1: hyper 0, reconf max(2,1)=2.
	// Round 2: hyper max(2)=2, reconf max(1,1)=1.
	if rep.Total != 5+2+2+2+1 {
		t.Fatalf("total = %d, want 12", rep.Total)
	}
	if len(rep.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
}

func TestFullySynchronizedRejects(t *testing.T) {
	m, err := New(twoTasks(), model.FullySynchronized, parallel, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Unequal lengths.
	_, err = m.Run([]TaskProgram{
		{Name: "A", Ops: []Op{{Hyper: setPtr(3), Req: set(3)}}},
		{Name: "B", Ops: []Op{{Hyper: setPtr(2), Req: set(2)}, {Req: set(2)}}},
	})
	if err == nil {
		t.Fatal("accepted unequal program lengths")
	}
	// Missing initial hyperreconfiguration.
	_, err = m.Run([]TaskProgram{
		{Name: "A", Ops: []Op{{Req: set(3)}}},
		{Name: "B", Ops: []Op{{Hyper: setPtr(2), Req: set(2)}}},
	})
	if err == nil {
		t.Fatal("accepted missing initial hyperreconfiguration")
	}
	// Requirement outside hypercontext.
	_, err = m.Run([]TaskProgram{
		{Name: "A", Ops: []Op{{Hyper: setPtr(3, 0), Req: set(3, 1)}}},
		{Name: "B", Ops: []Op{{Hyper: setPtr(2), Req: set(2)}}},
	})
	if err == nil {
		t.Fatal("accepted unsatisfied requirement")
	}
	// Wrong universe.
	_, err = m.Run([]TaskProgram{
		{Name: "A", Ops: []Op{{Hyper: setPtr(2, 0), Req: set(3, 0)}}},
		{Name: "B", Ops: []Op{{Hyper: setPtr(2), Req: set(2)}}},
	})
	if err == nil {
		t.Fatal("accepted wrong hypercontext universe")
	}
	// Wrong program count.
	if _, err := m.Run(nil); err == nil {
		t.Fatal("accepted missing programs")
	}
}

func TestNonSynchronizedBottleneck(t *testing.T) {
	m, err := New(twoTasks(), model.NonSynchronized, parallel, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	programs := []TaskProgram{
		// A: v=2; hyper(2 switches) + 3 reconfs à 2 = 2+6 = 8.
		{Name: "A", Ops: []Op{
			{Hyper: setPtr(3, 0, 1), Req: set(3, 0)},
			{Req: set(3, 1)},
			{Req: set(3, 0)},
		}},
		// B: v=5; hyper(1 switch) + 1 reconf à 1 = 6.
		{Name: "B", Ops: []Op{
			{Hyper: setPtr(2, 0), Req: set(2, 0)},
		}},
	}
	rep, err := m.Run(programs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 10+8 {
		t.Fatalf("total = %d, want 18", rep.Total)
	}
	if rep.Bottleneck != 0 {
		t.Fatalf("bottleneck = %d, want 0", rep.Bottleneck)
	}
	if rep.TaskTimes[0] != 8 || rep.TaskTimes[1] != 6 {
		t.Fatalf("task times = %v", rep.TaskTimes)
	}
}

func TestNonSynchronizedRequiresInitialHyper(t *testing.T) {
	m, err := New(twoTasks(), model.NonSynchronized, parallel, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run([]TaskProgram{
		{Name: "A", Ops: []Op{{Req: set(3)}}},
		{Name: "B", Ops: []Op{{Hyper: setPtr(2), Req: set(2)}}},
	})
	if err == nil {
		t.Fatal("accepted missing initial hyperreconfiguration")
	}
	_, err = m.Run([]TaskProgram{
		{Name: "A", Ops: nil},
		{Name: "B", Ops: []Op{{Hyper: setPtr(2), Req: set(2)}}},
	})
	if err == nil {
		t.Fatal("accepted empty program")
	}
}

func TestPublicGlobalTerm(t *testing.T) {
	m, err := New(twoTasks(), model.FullySynchronized, parallel, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	programs := []TaskProgram{
		{Name: "A", Ops: []Op{{Hyper: setPtr(3, 0), Req: set(3, 0)}}},
		{Name: "B", Ops: []Op{{Hyper: setPtr(2, 0), Req: set(2, 0)}}},
	}
	rep, err := m.Run(programs)
	if err != nil {
		t.Fatal(err)
	}
	// W=3 + hyper max(2,5)=5 + reconf max(pub=4, 1, 1)=4.
	if rep.Total != 3+5+4 {
		t.Fatalf("total = %d, want 12", rep.Total)
	}

	seq, err := New(twoTasks(), model.FullySynchronized, sequential, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = seq.Run(programs)
	if err != nil {
		t.Fatal(err)
	}
	// W=3 + hyper 2+5 + reconf 1+1+4.
	if rep.Total != 3+7+6 {
		t.Fatalf("sequential total = %d, want 16", rep.Total)
	}
}

func TestEmptyRun(t *testing.T) {
	m, err := New(twoTasks(), model.FullySynchronized, parallel, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run([]TaskProgram{{Name: "A"}, {Name: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 7 {
		t.Fatalf("empty run total = %d, want W=7", rep.Total)
	}
}

// randomInstanceAndSchedule builds a random instance plus a canonical
// schedule for the agreement property test.
func randomInstanceAndSchedule(r *rand.Rand) (*model.MTSwitchInstance, *model.MTSchedule) {
	m := 1 + r.Intn(4)
	n := 1 + r.Intn(8)
	tasks := make([]model.Task, m)
	rows := make([][]bitset.Set, m)
	hyper := make([][]bool, m)
	for j := 0; j < m; j++ {
		l := 1 + r.Intn(5)
		tasks[j] = model.Task{Name: string(rune('A' + j)), Local: l, V: model.Cost(1 + r.Intn(5))}
		rows[j] = make([]bitset.Set, n)
		hyper[j] = make([]bool, n)
		hyper[j][0] = true
		for i := 0; i < n; i++ {
			s := bitset.New(l)
			for b := 0; b < l; b++ {
				if r.Intn(3) == 0 {
					s.Add(b)
				}
			}
			rows[j][i] = s
			if i > 0 {
				hyper[j][i] = r.Intn(3) == 0
			}
		}
	}
	ins, err := model.NewMTSwitchInstance(tasks, rows)
	if err != nil {
		panic(err)
	}
	sched, err := ins.CanonicalSchedule(hyper)
	if err != nil {
		panic(err)
	}
	return ins, sched
}

// Property: the concurrent runtime and the closed-form cost model agree
// exactly on fully synchronized schedules, for both upload modes.
func TestQuickRuntimeAgreesWithCostModel(t *testing.T) {
	for _, opt := range []model.CostOptions{parallel, sequential,
		{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskSequential},
		{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskParallel}} {
		opt := opt
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			ins, sched := randomInstanceAndSchedule(r)
			want, err := ins.Cost(sched, opt)
			if err != nil {
				return false
			}
			programs, err := FromSchedule(ins, sched)
			if err != nil {
				return false
			}
			m, err := New(ins.Tasks, model.FullySynchronized, opt, ins.W, ins.PublicGlobal)
			if err != nil {
				return false
			}
			rep, err := m.Run(programs)
			if err != nil {
				return false
			}
			return rep.Total == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("upload modes %v/%v: %v", opt.HyperUpload, opt.ReconfUpload, err)
		}
	}
}

func TestMixedModeCosts(t *testing.T) {
	// Two tasks, two rounds.  Task A: hyper(2 switches)+2 reconfs à 2;
	// task B: hyper(1 switch)+1 no-hyper, reconfs à 1.
	programs := []TaskProgram{
		{Name: "A", Ops: []Op{
			{Hyper: setPtr(3, 0, 1), Req: set(3, 0)},
			{Req: set(3, 1)},
		}},
		{Name: "B", Ops: []Op{
			{Hyper: setPtr(2, 0), Req: set(2, 0)},
			{Req: set(2, 0)},
		}},
	}
	// HypercontextSynchronized, parallel: hyper phases barriered,
	// reconf free-running.
	// Round 0: lanes equalize at 0, hyper max(2,5)=5 → lanes 5; reconf
	// free: A 5+2=7, B 5+1=6.
	// Round 1: hyper barrier: max lane 7, no participants → lanes 7;
	// reconf free: A 9, B 8.  Total max = 9.
	m, err := New(twoTasks(), model.HypercontextSynchronized, parallel, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(programs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 9 {
		t.Fatalf("hypercontext-synchronized total = %d, want 9", rep.Total)
	}
	// ContextSynchronized, parallel: hyper free, reconf barriered.
	// Round 0: A lane 2, B lane 5 (hyper); reconf barrier: max(2,5)=5 +
	// max(2,1)=2 → lanes 7.
	// Round 1: no hyper; reconf barrier: 7 + max(2,1)=2 → lanes 9.
	m, err = New(twoTasks(), model.ContextSynchronized, parallel, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = m.Run(programs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 9 {
		t.Fatalf("context-synchronized total = %d, want 9", rep.Total)
	}
}

// Property: more synchronization never shortens the timeline for the
// same programs: NonSynchronized ≤ each mixed mode ≤ FullySynchronized.
func TestQuickModeOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins, sched := randomInstanceAndSchedule(r)
		programs, err := FromSchedule(ins, sched)
		if err != nil {
			return false
		}
		totals := make(map[model.SyncMode]model.Cost)
		for _, mode := range []model.SyncMode{
			model.NonSynchronized, model.HypercontextSynchronized,
			model.ContextSynchronized, model.FullySynchronized,
		} {
			m, err := New(ins.Tasks, mode, parallel, ins.W, 0)
			if err != nil {
				return false
			}
			rep, err := m.Run(programs)
			if err != nil {
				return false
			}
			totals[mode] = rep.Total
		}
		non, full := totals[model.NonSynchronized], totals[model.FullySynchronized]
		return non <= totals[model.HypercontextSynchronized] &&
			non <= totals[model.ContextSynchronized] &&
			totals[model.HypercontextSynchronized] <= full &&
			totals[model.ContextSynchronized] <= full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the non-synchronized runtime agrees with the closed-form
// General Multi Task model (model.AsyncRun) on any schedule.
func TestQuickNonSyncAgreesWithAsyncModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ins, sched := randomInstanceAndSchedule(r)
		programs, err := FromSchedule(ins, sched)
		if err != nil {
			return false
		}
		// Build the AsyncRun directly from the programs.
		run := &model.AsyncRun{GlobalInit: ins.W}
		for j, p := range programs {
			tr := model.AsyncTaskRun{Name: p.Name}
			var cur *model.AsyncPhase
			for _, op := range p.Ops {
				if op.Hyper != nil {
					tr.Phases = append(tr.Phases, model.AsyncPhase{
						LocalInit:  ins.Tasks[j].V,
						ReconfCost: model.Cost(op.Hyper.Count()),
					})
					cur = &tr.Phases[len(tr.Phases)-1]
				}
				cur.Steps++
			}
			run.Tasks = append(run.Tasks, tr)
		}
		want, err := run.TotalTime()
		if err != nil {
			return false
		}
		m, err := New(ins.Tasks, model.NonSynchronized, parallel, ins.W, 0)
		if err != nil {
			return false
		}
		rep, err := m.Run(programs)
		if err != nil {
			return false
		}
		return rep.Total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFromScheduleValidation(t *testing.T) {
	if _, err := FromSchedule(nil, nil); err == nil {
		t.Fatal("accepted nils")
	}
}
