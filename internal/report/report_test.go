package report

import (
	"strings"
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "cost"}, [][]string{
		{"disabled", "5280"},
		{"multi", "2813"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "cost") {
		t.Fatalf("header = %q", lines[0])
	}
	// All rows aligned to the same width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) > w+2 {
			t.Fatalf("row wider than separator: %q", l)
		}
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func buildSchedule(t *testing.T) (*model.MTSwitchInstance, *model.MTSchedule) {
	t.Helper()
	tasks := []model.Task{{Name: "A", Local: 2, V: 1}, {Name: "LONGNAME", Local: 3, V: 2}}
	reqs := [][]bitset.Set{
		{bitset.FromMembers(2, 0), bitset.FromMembers(2, 1), bitset.FromMembers(2, 0)},
		{bitset.FromMembers(3, 2), bitset.New(3), bitset.FromMembers(3, 0, 1)},
	}
	ins, err := model.NewMTSwitchInstance(tasks, reqs)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ins.CanonicalSchedule([][]bool{{true, true, false}, {true, false, true}})
	if err != nil {
		t.Fatal(err)
	}
	return ins, sched
}

func TestHyperMap(t *testing.T) {
	_, sched := buildSchedule(t)
	out := HyperMap([]string{"A", "LONGNAME"}, sched)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("hyper map has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "##.") {
		t.Fatalf("task A row = %q, want ##.", lines[1])
	}
	if !strings.Contains(lines[2], "#.#") {
		t.Fatalf("task B row = %q, want #.#", lines[2])
	}
	if HyperMap(nil, nil) != "" {
		t.Fatal("nil schedule should render empty")
	}
}

func TestContextMap(t *testing.T) {
	ins, sched := buildSchedule(t)
	out, err := ContextMap(ins, sched)
	if err != nil {
		t.Fatal(err)
	}
	// Task A: hyper at 0 and 1; hctx sizes: step0 {0}=1, step1 {1}=1,
	// step2 (kept) {1}∪req{0}? No — segment [1,3) union = {1}∪{0} = 2.
	if !strings.Contains(out, "A hyper") || !strings.Contains(out, "A used") || !strings.Contains(out, "A avail") {
		t.Fatalf("missing sections:\n%s", out)
	}
	if !strings.Contains(out, "##.") {
		t.Fatalf("missing hyper marks:\n%s", out)
	}
	// Requirement sizes for LONGNAME: 1, 0, 2.
	if !strings.Contains(out, "102") {
		t.Fatalf("missing requirement sizes:\n%s", out)
	}
	if _, err := ContextMap(nil, nil); err == nil {
		t.Fatal("accepted nils")
	}
	// Invalid schedule rejected.
	bad := &model.MTSchedule{Hyper: sched.Hyper[:1], Hctx: sched.Hctx[:1]}
	if _, err := ContextMap(ins, bad); err == nil {
		t.Fatal("accepted invalid schedule")
	}
}

func TestSegmentsLine(t *testing.T) {
	if got := SegmentsLine(5, []int{0, 3}); got != "#..#." {
		t.Fatalf("SegmentsLine = %q", got)
	}
	if got := SegmentsLine(3, []int{5}); got != "..." {
		t.Fatalf("out-of-range start should be ignored, got %q", got)
	}
}

func TestCostRow(t *testing.T) {
	row := CostRow("multi", 2813, 5280, 50)
	if row[0] != "multi" || row[1] != "2813" || row[3] != "50" {
		t.Fatalf("row = %v", row)
	}
	if row[2] != "53.3%" {
		t.Fatalf("percentage = %q, want 53.3%%", row[2])
	}
	row = CostRow("x", 1, 0, 0)
	if row[2] != "-" {
		t.Fatalf("zero-baseline percentage = %q", row[2])
	}
}
