package report

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// SVG rendering of the paper's figures.  The renderers build standalone
// SVG documents with stdlib string formatting only; colors follow a
// restrained two-hue scheme (blue for availability, orange for use,
// black tick marks for hyperreconfigurations).

const (
	svgCell    = 10 // px per step
	svgRowH    = 14 // px per lane
	svgGutter  = 6
	svgLabelW  = 70
	svgPadding = 8
)

// svgHeader opens a document of the given pixel size.
func svgHeader(w, h int) string {
	return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="monospace" font-size="10">`+"\n", w, h, w, h)
}

// fillFor maps a utilization fraction (0..1) to a color of the given
// hue ramp.
func fillFor(frac float64, hue string) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// Lighten towards white for low utilization.
	level := int(255 - frac*170)
	switch hue {
	case "blue":
		return fmt.Sprintf("rgb(%d,%d,255)", level, level)
	default: // orange
		return fmt.Sprintf("rgb(255,%d,%d)", level, level/2+60)
	}
}

// SVGHyperMap renders Figure 3 as SVG: one lane per task, one cell per
// step, dark cells where the task performs a partial
// hyperreconfiguration.
func SVGHyperMap(names []string, sched *model.MTSchedule) (string, error) {
	if sched == nil || len(sched.Hyper) == 0 {
		return "", fmt.Errorf("report: nil or empty schedule")
	}
	m := len(sched.Hyper)
	n := len(sched.Hyper[0])
	width := svgLabelW + n*svgCell + 2*svgPadding
	height := m*(svgRowH+svgGutter) + 2*svgPadding + svgRowH // + axis row
	var b strings.Builder
	b.WriteString(svgHeader(width, height))
	for j := 0; j < m; j++ {
		y := svgPadding + j*(svgRowH+svgGutter)
		name := ""
		if j < len(names) {
			name = names[j]
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", svgPadding, y+svgRowH-3, xmlEscape(name))
		for i := 0; i < n; i++ {
			x := svgLabelW + svgPadding + i*svgCell
			fill := "#eeeeee"
			if sched.Hyper[j][i] {
				fill = "#222222"
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="white" stroke-width="0.5"/>`+"\n",
				x, y, svgCell, svgRowH, fill)
		}
	}
	axisY := svgPadding + m*(svgRowH+svgGutter) + svgRowH - 3
	for i := 0; i < n; i += 10 {
		fmt.Fprintf(&b, `<text x="%d" y="%d">%d</text>`+"\n", svgLabelW+svgPadding+i*svgCell, axisY, i)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// SVGContextMap renders Figure 2 as SVG: per task two lanes — the
// hypercontext size (avail, blue) and the requirement size (used,
// orange) — shaded by utilization of the task's switch budget, with
// black tick marks at hyperreconfiguration steps.
func SVGContextMap(ins *model.MTSwitchInstance, sched *model.MTSchedule) (string, error) {
	if ins == nil || sched == nil {
		return "", fmt.Errorf("report: nil instance or schedule")
	}
	if err := ins.Validate(sched); err != nil {
		return "", err
	}
	m, n := ins.NumTasks(), ins.Steps()
	laneBlock := 2*svgRowH + svgGutter
	width := svgLabelW + n*svgCell + 2*svgPadding
	height := m*(laneBlock+svgGutter) + 2*svgPadding
	var b strings.Builder
	b.WriteString(svgHeader(width, height))
	for j := 0; j < m; j++ {
		yAvail := svgPadding + j*(laneBlock+svgGutter)
		yUsed := yAvail + svgRowH
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", svgPadding, yUsed, xmlEscape(ins.Tasks[j].Name))
		budget := float64(ins.Tasks[j].Local)
		if budget == 0 {
			budget = 1
		}
		for i := 0; i < n; i++ {
			x := svgLabelW + svgPadding + i*svgCell
			avail := float64(sched.Hctx[j][i].Count()) / budget
			used := float64(ins.Reqs[j][i].Count()) / budget
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="white" stroke-width="0.5"/>`+"\n",
				x, yAvail, svgCell, svgRowH, fillFor(avail, "blue"))
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="white" stroke-width="0.5"/>`+"\n",
				x, yUsed, svgCell, svgRowH, fillFor(used, "orange"))
			if sched.Hyper[j][i] {
				fmt.Fprintf(&b, `<rect x="%d" y="%d" width="2" height="%d" fill="black"/>`+"\n",
					x, yAvail, 2*svgRowH)
			}
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// xmlEscape escapes text content for embedding in SVG.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
