// Package report renders the experiment artifacts of the paper's
// Section 6 as plain text (and CSV for plotting): the cost-comparison
// table, Figure 2 (per-task context/hypercontext activity over time
// with hyperreconfiguration time steps) and Figure 3 (which tasks
// perform a partial hyperreconfiguration at each step).
package report

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for c, h := range headers {
		widths[c] = len(h)
	}
	for _, row := range rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders rows as comma-separated values (cells must not contain
// commas; the renderer is for simple numeric tables).
func CSV(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// HyperMap renders a Figure-3-style chart: one row per task, one column
// per step, '#' where the task performs a partial hyperreconfiguration
// and '.' where it issues a no-hyperreconfiguration operation.
func HyperMap(names []string, sched *model.MTSchedule) string {
	if sched == nil || len(sched.Hyper) == 0 {
		return ""
	}
	var b strings.Builder
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	n := len(sched.Hyper[0])
	fmt.Fprintf(&b, "%-*s  ", width, "step")
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			b.WriteByte('0' + byte((i/10)%10))
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')
	for j := range sched.Hyper {
		name := ""
		if j < len(names) {
			name = names[j]
		}
		fmt.Fprintf(&b, "%-*s  ", width, name)
		for i := 0; i < n; i++ {
			if sched.Hyper[j][i] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ContextMap renders a Figure-2-style chart: for each task, per-step
// hypercontext and requirement sizes (base-36 digits so sizes up to 35
// fit in one column) plus the hyperreconfiguration marks.  A column
// reads: requirement size (how much of the hypercontext is in use) over
// hypercontext size (how much is available).
func ContextMap(ins *model.MTSwitchInstance, sched *model.MTSchedule) (string, error) {
	if ins == nil || sched == nil {
		return "", fmt.Errorf("report: nil instance or schedule")
	}
	if err := ins.Validate(sched); err != nil {
		return "", err
	}
	digit := func(v int) byte {
		switch {
		case v < 10:
			return '0' + byte(v)
		case v < 36:
			return 'a' + byte(v-10)
		default:
			return '+'
		}
	}
	width := 0
	for _, t := range ins.Tasks {
		if len(t.Name) > width {
			width = len(t.Name)
		}
	}
	width += len(" avail") // suffix labels below
	var b strings.Builder
	n := ins.Steps()
	for j, t := range ins.Tasks {
		fmt.Fprintf(&b, "%-*s  ", width, t.Name+" hyper")
		for i := 0; i < n; i++ {
			if sched.Hyper[j][i] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-*s  ", width, t.Name+" used")
		for i := 0; i < n; i++ {
			b.WriteByte(digit(ins.Reqs[j][i].Count()))
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-*s  ", width, t.Name+" avail")
		for i := 0; i < n; i++ {
			b.WriteByte(digit(sched.Hctx[j][i].Count()))
		}
		b.WriteString("\n\n")
	}
	return b.String(), nil
}

// SegmentsLine renders a single-task segmentation as hyper marks, the
// m=1 top half of Figure 2.
func SegmentsLine(n int, starts []int) string {
	marks := make([]byte, n)
	for i := range marks {
		marks[i] = '.'
	}
	for _, s := range starts {
		if s >= 0 && s < n {
			marks[s] = '#'
		}
	}
	return string(marks)
}

// CostRow formats one line of the headline cost table.
func CostRow(label string, cost model.Cost, disabled model.Cost, hypers int) []string {
	pct := "-"
	if disabled > 0 {
		pct = fmt.Sprintf("%.1f%%", 100*float64(cost)/float64(disabled))
	}
	return []string{label, fmt.Sprintf("%d", cost), pct, fmt.Sprintf("%d", hypers)}
}
