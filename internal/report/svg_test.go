package report

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestSVGHyperMap(t *testing.T) {
	_, sched := buildSchedule(t)
	svg, err := SVGHyperMap([]string{"A", "B&B"}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// Must be well-formed XML.
	if err := xml.Unmarshal([]byte(svg), new(interface{})); err != nil {
		t.Fatalf("invalid XML: %v", err)
	}
	// Escaping of the ampersand in the task name.
	if !strings.Contains(svg, "B&amp;B") {
		t.Fatal("task name not escaped")
	}
	// Dark cells for hyper steps exist.
	if !strings.Contains(svg, "#222222") {
		t.Fatal("no hyperreconfiguration cells rendered")
	}
	if _, err := SVGHyperMap(nil, nil); err == nil {
		t.Fatal("accepted nil schedule")
	}
}

func TestSVGContextMap(t *testing.T) {
	ins, sched := buildSchedule(t)
	svg, err := SVGContextMap(ins, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := xml.Unmarshal([]byte(svg), new(interface{})); err != nil {
		t.Fatalf("invalid XML: %v", err)
	}
	// Two lanes per task plus hyper ticks.
	if strings.Count(svg, "<text") < 2 {
		t.Fatal("missing task labels")
	}
	if !strings.Contains(svg, `fill="black"`) {
		t.Fatal("missing hyperreconfiguration tick marks")
	}
	if _, err := SVGContextMap(nil, nil); err == nil {
		t.Fatal("accepted nils")
	}
	bad := *sched
	bad.Hyper = bad.Hyper[:1]
	if _, err := SVGContextMap(ins, &bad); err == nil {
		t.Fatal("accepted invalid schedule")
	}
}

func TestFillForClamps(t *testing.T) {
	if fillFor(-1, "blue") != fillFor(0, "blue") {
		t.Fatal("negative fraction not clamped")
	}
	if fillFor(2, "orange") != fillFor(1, "orange") {
		t.Fatal("fraction above 1 not clamped")
	}
	if fillFor(0.5, "blue") == fillFor(0.5, "orange") {
		t.Fatal("hues indistinguishable")
	}
}
