package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFromWordsRoundTrip(t *testing.T) {
	s := FromMembers(130, 0, 63, 64, 129)
	view := FromWords(130, s.Words())
	if !view.Equal(s) {
		t.Fatal("FromWords(Words()) differs from original")
	}
	// Zero-copy: mutating the view mutates the original.
	view.Add(5)
	if !s.Contains(5) {
		t.Fatal("FromWords copied instead of aliasing")
	}
}

func TestFromWordsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	FromWords(65, make([]uint64, 1))
}

func TestCompareWords(t *testing.T) {
	if CompareWords([]uint64{1, 2}, []uint64{1, 2}) != 0 {
		t.Fatal("equal vectors compare nonzero")
	}
	if CompareWords([]uint64{1, 2}, []uint64{1, 3}) >= 0 {
		t.Fatal("smaller vector does not compare < 0")
	}
	if CompareWords([]uint64{2, 0}, []uint64{1, ^uint64(0)}) <= 0 {
		t.Fatal("word 0 must dominate the ordering")
	}
}

func TestCompareWordsIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a := []uint64{uint64(r.Intn(4)), uint64(r.Intn(4))}
		b := []uint64{uint64(r.Intn(4)), uint64(r.Intn(4))}
		ab, ba := CompareWords(a, b), CompareWords(b, a)
		if ab != -ba {
			return false
		}
		return (ab == 0) == (a[0] == b[0] && a[1] == b[1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashWordsEqualVectorsHashEqual(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for k := 0; k < 200; k++ {
		n := 1 + r.Intn(200)
		s := randomSet(r, n)
		if HashWords(s.Words()) != HashWords(s.Clone().Words()) {
			t.Fatal("equal vectors hash differently")
		}
	}
}

func TestHashWordsSpreads(t *testing.T) {
	// Not a collision-resistance proof — just a regression guard that
	// single-bit vectors (the common sparse case) don't collapse onto a
	// few hash values.
	seen := make(map[uint64]bool)
	for b := 0; b < 192; b++ {
		s := FromMembers(192, b)
		seen[HashWords(s.Words())] = true
	}
	if len(seen) != 192 {
		t.Fatalf("%d distinct hashes for 192 single-bit vectors", len(seen))
	}
}
