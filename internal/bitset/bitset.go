// Package bitset provides dense, fixed-universe bit sets used throughout
// the hyperreconfiguration library to represent sets of reconfigurable
// units ("switches") and the context requirements / hypercontexts built
// from them.
//
// The Switch cost model of Lange & Middendorf identifies both context
// requirements and hypercontexts with subsets of a switch universe
// X = {x_0, ..., x_{n-1}}; the cost of an ordinary reconfiguration under
// hypercontext h is |h|.  Solvers therefore perform a very large number
// of union, subset and popcount operations over small universes (SHyRA
// has 48 switches).  Set packs the universe into 64-bit words so these
// operations are word-parallel and, for the in-place variants,
// allocation-free.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a subset of a fixed universe {0, ..., N-1}.  The zero value is
// an empty set over an empty universe; use New to create a set with a
// given universe size.  All binary operations require both operands to
// share the same universe size and panic otherwise: mixing universes is
// always a programming error in this library, never a data condition.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromMembers returns a set over {0, ..., n-1} containing the given members.
func FromMembers(n int, members ...int) Set {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Universe returns the size of the universe the set ranges over.
func (s Set) Universe() int { return s.n }

// check panics if i is outside the universe.
func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: element %d out of universe [0,%d)", i, s.n))
	}
}

func (s Set) same(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, t.n))
	}
}

// Add inserts i into the set.
func (s Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is a member of the set.
func (s Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns |s|, the number of members.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all members in place.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every universe element in place.
func (s Set) Fill() {
	if len(s.words) == 0 {
		return
	}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Mask off bits beyond the universe in the last word.
	if rem := s.n % wordBits; rem != 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Full returns the complete universe set over {0, ..., n-1}.
func Full(n int) Set {
	s := New(n)
	s.Fill()
	return s
}

// UnionWith adds every member of t to s in place.
func (s Set) UnionWith(t Set) {
	s.same(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every member not in t, in place.
func (s Set) IntersectWith(t Set) {
	s.same(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every member of t from s in place.
func (s Set) DifferenceWith(t Set) {
	s.same(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns s \ t as a new set.
func (s Set) Difference(t Set) Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// SymmetricDifference returns s Δ t as a new set.  The size of the
// symmetric difference is the changeover cost |h Δ h'| of the paper's
// changeover-cost model variant.
func (s Set) SymmetricDifference(t Set) Set {
	s.same(t)
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	for i := range s.words {
		c.words[i] = s.words[i] ^ t.words[i]
	}
	return c
}

// SymmetricDifferenceCount returns |s Δ t| without allocating.
func (s Set) SymmetricDifferenceCount(t Set) int {
	s.same(t)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] ^ t.words[i])
	}
	return c
}

// UnionCount returns |s ∪ t| without allocating.
func (s Set) UnionCount(t Set) int {
	s.same(t)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] | t.words[i])
	}
	return c
}

// IsSubsetOf reports whether every member of s is in t.  In model terms:
// a context requirement c can be satisfied by hypercontext h exactly
// when c.IsSubsetOf(h).
func (s Set) IsSubsetOf(t Set) bool {
	s.same(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same members.
func (s Set) Equal(t Set) bool {
	s.same(t)
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Members returns the members in ascending order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for each member in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Words exposes the set's backing words without copying.  Bit i of the
// set lives at words[i/64] bit i%64; bits at and beyond the universe
// size are always zero.  The packed-state frontier engine builds flat
// per-generation slabs out of these words, so mutating the returned
// slice mutates the set.
func (s Set) Words() []uint64 { return s.words }

// WordsFor returns how many 64-bit words back a set over a universe of
// size n — the per-task stride of packed state slabs.
func WordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// FromWords wraps existing words as a Set over {0..n-1} without
// copying: a zero-copy view used to reconstruct sets out of packed
// state slabs.  The caller guarantees len(words) == WordsFor(n) and
// that no bit at or beyond n is set; both are programming errors, so
// FromWords panics on a length mismatch.
func FromWords(n int, words []uint64) Set {
	if len(words) != WordsFor(n) {
		panic(fmt.Sprintf("bitset: %d words for universe %d, want %d", len(words), n, WordsFor(n)))
	}
	return Set{n: n, words: words}
}

// CompareWords orders two word vectors lexicographically (word 0 most
// significant for the ordering, numeric comparison within a word).  It
// is the deterministic tie-breaker shared by the packed frontier engine
// and the reference solver; both must agree or beam truncation would
// diverge between them.  Panics on length mismatch.
func CompareWords(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bitset: comparing word vectors of length %d and %d", len(a), len(b)))
	}
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// HashWords hashes a word vector to 64 bits by chaining the splitmix64
// mixing function across the words.  Each round is a bijection of the
// running state, so sparse vectors (the common case: few switches set)
// avalanche across the whole output range — a plain multiplicative fold
// leaves single-bit vectors linearly related and measurably collides.
// Equal vectors hash equal; distinct vectors may collide, so users must
// compare the full vector on hash equality.
func HashWords(words []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		x := h + w + 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		h = x
	}
	return h
}

// Key returns a compact string usable as a map key identifying the set's
// contents.  Two sets over the same universe have equal keys iff they
// are Equal.  The dominance-pruned multi-task DP uses keys to
// canonicalize per-task segment unions.
func (s Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> (8 * uint(i))))
		}
	}
	return b.String()
}

// String renders the set as a bit string, LSB (element 0) first, e.g.
// "10110000" for {0, 2, 3} over a universe of 8.  Matches the visual
// style of Figure 2 in the paper.
func (s Set) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Contains(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Parse parses a bit string produced by String back into a set.
func Parse(bitstr string) (Set, error) {
	s := New(len(bitstr))
	for i := 0; i < len(bitstr); i++ {
		switch bitstr[i] {
		case '1':
			s.Add(i)
		case '0':
		default:
			return Set{}, fmt.Errorf("bitset: invalid character %q at position %d", bitstr[i], i)
		}
	}
	return s, nil
}
