package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Universe() != 130 {
		t.Fatalf("Universe = %d, want 130", s.Universe())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("set contains 64 after Remove")
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	// Removing an absent element is a no-op.
	s.Remove(64)
	if got := s.Count(); got != 5 {
		t.Fatalf("Count after double Remove = %d, want 5", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-universe element")
		}
	}()
	s := New(5)
	s.Add(5)
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for universe mismatch")
		}
	}()
	New(5).Union(New(6))
}

func TestFullAndFill(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		f := Full(n)
		if got := f.Count(); got != n {
			t.Fatalf("Full(%d).Count = %d", n, got)
		}
		for i := 0; i < n; i++ {
			if !f.Contains(i) {
				t.Fatalf("Full(%d) missing %d", n, i)
			}
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromMembers(10, 0, 1, 2, 5)
	b := FromMembers(10, 2, 3, 5, 9)

	if got := a.Union(b).Members(); !equalInts(got, []int{0, 1, 2, 3, 5, 9}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Members(); !equalInts(got, []int{2, 5}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Difference(b).Members(); !equalInts(got, []int{0, 1}) {
		t.Fatalf("Difference = %v", got)
	}
	if got := a.SymmetricDifference(b).Members(); !equalInts(got, []int{0, 1, 3, 9}) {
		t.Fatalf("SymmetricDifference = %v", got)
	}
	if got := a.SymmetricDifferenceCount(b); got != 4 {
		t.Fatalf("SymmetricDifferenceCount = %d, want 4", got)
	}
	if got := a.UnionCount(b); got != 6 {
		t.Fatalf("UnionCount = %d, want 6", got)
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromMembers(10, 1, 2)
	b := FromMembers(10, 1, 2, 3)
	if !a.IsSubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.IsSubsetOf(a) {
		t.Fatal("a should be subset of itself")
	}
	if a.Equal(b) {
		t.Fatal("a should not equal b")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone should equal original")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromMembers(10, 1)
	c := a.Clone()
	c.Add(2)
	if a.Contains(2) {
		t.Fatal("mutating clone affected original")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromMembers(10, 0, 1)
	a.UnionWith(FromMembers(10, 2))
	if !equalInts(a.Members(), []int{0, 1, 2}) {
		t.Fatalf("UnionWith = %v", a.Members())
	}
	a.IntersectWith(FromMembers(10, 1, 2, 3))
	if !equalInts(a.Members(), []int{1, 2}) {
		t.Fatalf("IntersectWith = %v", a.Members())
	}
	a.DifferenceWith(FromMembers(10, 2))
	if !equalInts(a.Members(), []int{1}) {
		t.Fatalf("DifferenceWith = %v", a.Members())
	}
	a.Clear()
	if !a.IsEmpty() {
		t.Fatal("Clear did not empty set")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	s := FromMembers(8, 0, 2, 3)
	if got := s.String(); got != "10110000" {
		t.Fatalf("String = %q, want 10110000", got)
	}
	p, err := Parse("10110000")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Equal(s) {
		t.Fatal("Parse(String(s)) != s")
	}
	if _, err := Parse("10x"); err == nil {
		t.Fatal("Parse accepted invalid character")
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := FromMembers(70, 0, 69)
	b := FromMembers(70, 0, 68)
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("equal sets have distinct keys")
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromMembers(130, 5, 64, 129, 0)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !equalInts(got, []int{0, 5, 64, 129}) {
		t.Fatalf("ForEach order = %v", got)
	}
	if !equalInts(s.Members(), got) {
		t.Fatalf("Members = %v, want %v", s.Members(), got)
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickUnionCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |a ∪ b| + |a ∩ b| == |a| + |b|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		return a.UnionCount(b)+a.Intersect(b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymmetricDifference(t *testing.T) {
	// a Δ b == (a ∪ b) \ (a ∩ b), and counts agree with the fast path.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		sd := a.SymmetricDifference(b)
		want := a.Union(b).Difference(a.Intersect(b))
		return sd.Equal(want) && sd.Count() == a.SymmetricDifferenceCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetOfUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		u := a.Union(b)
		return a.IsSubsetOf(u) && b.IsSubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		a := randomSet(r, n)
		p, err := Parse(a.String())
		return err == nil && p.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyAgreesWithEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := randomSet(r, n), randomSet(r, n)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(append([]int(nil), a...))
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
