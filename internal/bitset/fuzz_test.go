package bitset

import "testing"

// FuzzParse checks Parse never panics and that accepted inputs
// round-trip exactly through String.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("10110000")
	f.Add("1111111111111111111111111111111111111111111111111111111111111111111")
	f.Add("10x1")
	f.Fuzz(func(t *testing.T, s string) {
		set, err := Parse(s)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		if got := set.String(); got != s {
			t.Fatalf("round trip changed %q to %q", s, got)
		}
		if set.Universe() != len(s) {
			t.Fatalf("universe %d for input length %d", set.Universe(), len(s))
		}
	})
}
