// Benchmarks regenerating the paper's evaluation artifacts.  One bench
// per experiment of DESIGN.md's experiment index; each reports the
// experiment's headline quantity through b.ReportMetric so the numeric
// results appear alongside the timing:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/ga"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mtdag"
	"repro/internal/mtswitch"
	"repro/internal/partition"
	"repro/internal/phc"
	"repro/internal/report"
	"repro/internal/rmesh"
	"repro/internal/shyra"
	"repro/internal/solve"
	"repro/internal/workload"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}

// benchGA keeps GA work modest so the suite stays fast; the CLI uses
// larger populations for final numbers.
var benchGA = solve.Options{Pop: 40, Generations: 60, Seed: 1}

// paperTrace runs the paper's workload once per benchmark.
func paperTrace(b *testing.B) *shyra.Trace {
	b.Helper()
	tr, err := core.CounterTrace(0, 10)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkShyraCycle measures the simulator's cycle throughput (E1 /
// Figure 1: the architecture exists and executes).
func BenchmarkShyraCycle(b *testing.B) {
	var m shyra.Machine
	var cfg shyra.Config
	for v := 0; v < shyra.LUTTableBits; v++ {
		cfg.LUT[0][v] = v&1 == 0
		cfg.LUT[1][v] = v&3 == 3
	}
	cfg.MuxSel = [6]uint8{0, 1, 2, 3, 4, 5}
	cfg.DemuxSel = [2]uint8{6, 7}
	if err := m.Configure(cfg); err != nil {
		b.Fatal(err)
	}
	use := shyra.Usage{LUT: [2]bool{true, true}, LiveInputs: [2]uint8{3, 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Cycle(use); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounterTrace measures running and tracing the paper's 4-bit
// counter application end to end (E1).
func BenchmarkCounterTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := core.CounterTrace(0, 10)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkPaperCostTable regenerates the headline cost comparison
// (E2): disabled baseline vs optimal single-task vs multi-task GA.  The
// resulting costs are attached as metrics.
func BenchmarkPaperCostTable(b *testing.B) {
	var a *core.Analysis
	for i := 0; i < b.N; i++ {
		var err error
		a, err = core.RunPaperExperiment(context.Background(), core.Options{Solve: benchGA})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.Disabled), "disabled-cost")
	b.ReportMetric(float64(a.SingleOpt.Cost), "single-cost")
	b.ReportMetric(float64(a.Best().Cost), "multi-cost")
}

// BenchmarkFigure2 regenerates the Figure 2 rendering (E3): context
// sequences plus hyperreconfiguration time steps for m=1 and m=4.
func BenchmarkFigure2(b *testing.B) {
	a, err := core.RunPaperExperiment(context.Background(), core.Options{Solve: benchGA})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.SegmentsLine(a.Single.Len(), a.SingleOpt.Seg.Starts)
		if _, err := report.ContextMap(a.MT, a.Best().MTSched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the Figure 3 rendering (E4): which tasks
// perform partial hyperreconfigurations at each step.
func BenchmarkFigure3(b *testing.B) {
	a, err := core.RunPaperExperiment(context.Background(), core.Options{Solve: benchGA})
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, a.MT.NumTasks())
	for j, t := range a.MT.Tasks {
		names[j] = t.Name
	}
	b.ReportMetric(float64(core.HyperCount(a.Best().MTSched)), "partial-hyper-steps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = report.HyperMap(names, a.Best().MTSched)
	}
}

// BenchmarkSyncModes sweeps the upload modes (E5), reporting the GA
// cost for each combination as a metric.
func BenchmarkSyncModes(b *testing.B) {
	tr := paperTrace(b)
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		opt  model.CostOptions
	}{
		{"hyperPar-reconfPar", model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}},
		{"hyperPar-reconfSeq", model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskSequential}},
		{"hyperSeq-reconfPar", model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskParallel}},
		{"hyperSeq-reconfSeq", model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var cost model.Cost
			for i := 0; i < b.N; i++ {
				res, err := ga.Optimize(context.Background(), ins, bc.opt, benchGA)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Solution.Cost
			}
			b.ReportMetric(float64(cost), "cost")
		})
	}
}

// BenchmarkSolvers compares the solvers on the paper trace (E6).
func BenchmarkSolvers(b *testing.B) {
	tr := paperTrace(b)
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		b.Fatal(err)
	}
	single, err := ins.SingleTaskView()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SingleTaskDP", func(b *testing.B) {
		var cost model.Cost
		for i := 0; i < b.N; i++ {
			sol, err := phc.SolveSwitch(context.Background(), single)
			if err != nil {
				b.Fatal(err)
			}
			cost = sol.Cost
		}
		b.ReportMetric(float64(cost), "cost")
	})
	b.Run("SingleTaskGreedy", func(b *testing.B) {
		var cost model.Cost
		for i := 0; i < b.N; i++ {
			sol, err := phc.Greedy(context.Background(), single)
			if err != nil {
				b.Fatal(err)
			}
			cost = sol.Cost
		}
		b.ReportMetric(float64(cost), "cost")
	})
	b.Run("AlignedDP", func(b *testing.B) {
		var cost model.Cost
		for i := 0; i < b.N; i++ {
			sol, err := mtswitch.SolveAligned(context.Background(), ins, parallel)
			if err != nil {
				b.Fatal(err)
			}
			cost = sol.Cost
		}
		b.ReportMetric(float64(cost), "cost")
	})
	b.Run("BeamDP", func(b *testing.B) {
		var cost model.Cost
		for i := 0; i < b.N; i++ {
			sol, err := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{MaxStates: 2000, MaxCandidates: 4})
			if err != nil {
				b.Fatal(err)
			}
			cost = sol.Cost
		}
		b.ReportMetric(float64(cost), "cost")
	})
	b.Run("GA", func(b *testing.B) {
		var cost model.Cost
		for i := 0; i < b.N; i++ {
			res, err := ga.Optimize(context.Background(), ins, parallel, benchGA)
			if err != nil {
				b.Fatal(err)
			}
			cost = res.Solution.Cost
		}
		b.ReportMetric(float64(cost), "cost")
	})
}

// BenchmarkPointerTechnique compares the plain O(n²) single-task DP
// with the pointer-technique variant the paper alludes to, on a long
// periodic trace (the regime the technique accelerates).
func BenchmarkPointerTechnique(b *testing.B) {
	tr := paperTrace(b)
	base, err := tr.SingleInstance(shyra.GranularityBit)
	if err != nil {
		b.Fatal(err)
	}
	// Tile the counter trace to 4000 steps.
	reqs := base.Reqs
	for len(reqs) < 4000 {
		reqs = append(reqs, base.Reqs...)
	}
	long, err := model.NewSwitchInstance(base.Universe, base.W, reqs[:4000])
	if err != nil {
		b.Fatal(err)
	}
	b.Run("PlainDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := phc.SolveSwitch(context.Background(), long); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PointerDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := phc.SolveSwitchFast(context.Background(), long); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChangeover prices the changeover-cost variant (E7).
func BenchmarkChangeover(b *testing.B) {
	tr := paperTrace(b)
	single, err := tr.SingleInstance(shyra.GranularityBit)
	if err != nil {
		b.Fatal(err)
	}
	var plain, change model.Cost
	for i := 0; i < b.N; i++ {
		p, err := phc.SolveSwitch(context.Background(), single)
		if err != nil {
			b.Fatal(err)
		}
		c, err := phc.SolveChangeover(context.Background(), single)
		if err != nil {
			b.Fatal(err)
		}
		plain, change = p.Cost, c.Cost
	}
	b.ReportMetric(float64(plain), "plain-cost")
	b.ReportMetric(float64(change), "changeover-cost")
}

// BenchmarkApps analyzes every bundled application (E8).
func BenchmarkApps(b *testing.B) {
	for _, name := range core.AppNames() {
		b.Run(name, func(b *testing.B) {
			var a *core.Analysis
			for i := 0; i < b.N; i++ {
				tr, err := core.AppTrace(name)
				if err != nil {
					b.Fatal(err)
				}
				a, err = core.AnalyzeTrace(context.Background(), tr, core.Options{Solve: benchGA, SkipBeam: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(a.Disabled), "disabled-cost")
			b.ReportMetric(float64(a.Best().Cost), "multi-cost")
		})
	}
}

// BenchmarkGranularities compares requirement-extraction granularities
// (E9).
func BenchmarkGranularities(b *testing.B) {
	tr := paperTrace(b)
	for _, g := range []shyra.Granularity{shyra.GranularityBit, shyra.GranularityUnit, shyra.GranularityDelta} {
		b.Run(g.String(), func(b *testing.B) {
			var a *core.Analysis
			for i := 0; i < b.N; i++ {
				var err error
				a, err = core.AnalyzeTrace(context.Background(), tr, core.Options{Granularity: g, Solve: benchGA, SkipBeam: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(a.Best().Cost), "multi-cost")
			b.ReportMetric(float64(a.SingleOpt.Cost), "single-cost")
		})
	}
}

// BenchmarkMachineRuntime executes a solved schedule on the concurrent
// barrier-synchronized runtime (the machine substrate).
func BenchmarkMachineRuntime(b *testing.B) {
	tr := paperTrace(b)
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		b.Fatal(err)
	}
	sol, err := mtswitch.SolveAligned(context.Background(), ins, parallel)
	if err != nil {
		b.Fatal(err)
	}
	programs, err := machine.FromSchedule(ins, sol.Schedule)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(ins.Tasks, model.FullySynchronized, parallel, ins.W, ins.PublicGlobal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := m.Run(programs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Total != sol.Cost {
			b.Fatalf("runtime %d != model %d", rep.Total, sol.Cost)
		}
	}
}

// BenchmarkScalingSteps sweeps the trace length n on phased synthetic
// workloads (E12): how solver time and schedule quality scale with the
// computation length.
func BenchmarkScalingSteps(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		ins, err := workload.Phased(workload.Config{Tasks: 4, Steps: n, Switches: 12, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/aligned", n), func(b *testing.B) {
			var cost model.Cost
			for i := 0; i < b.N; i++ {
				sol, err := mtswitch.SolveAligned(context.Background(), ins, parallel)
				if err != nil {
					b.Fatal(err)
				}
				cost = sol.Cost
			}
			b.ReportMetric(float64(cost), "cost")
			b.ReportMetric(100*float64(cost)/float64(ins.DisabledCost()), "pct-of-disabled")
		})
		b.Run(fmt.Sprintf("n=%d/ga", n), func(b *testing.B) {
			var cost model.Cost
			for i := 0; i < b.N; i++ {
				res, err := ga.Optimize(context.Background(), ins, parallel, benchGA)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Solution.Cost
			}
			b.ReportMetric(float64(cost), "cost")
		})
	}
}

// BenchmarkScalingTasks sweeps the task count m on phased synthetic
// workloads (E12).
func BenchmarkScalingTasks(b *testing.B) {
	for _, m := range []int{2, 4, 8} {
		ins, err := workload.Phased(workload.Config{Tasks: m, Steps: 64, Switches: 12, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d/aligned", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mtswitch.SolveAligned(context.Background(), ins, parallel); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("m=%d/beam", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{MaxStates: 500, MaxCandidates: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrontierEngines compares the MT-Switch frontier engines
// (E14/E17) on the m=4 phased workload of BenchmarkScalingTasks:
// Reference is the seed map-keyed frontier DP, PackedW1 the
// packed-state engine restricted to one expansion worker (isolates
// the representation change), Packed the engine at GOMAXPROCS
// workers — these three run with pruning disabled, the PR3 baseline —
// and PrunedW1/Pruned add the pruned-search layer (preprocessing,
// dominance elimination, bound cutoffs) on top.  All variants produce
// identical costs (asserted in internal/mtswitch and
// internal/solve/solvers tests); scripts/bench.sh records the same
// comparisons into BENCH_PR3.json and BENCH_PR5.json.
func BenchmarkFrontierEngines(b *testing.B) {
	ins, err := workload.Phased(workload.Config{Tasks: 4, Steps: 64, Switches: 12, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := solve.Options{MaxStates: 500, MaxCandidates: 3, DisablePruning: true}
	run := func(b *testing.B, solveOne func() (model.Cost, error)) {
		b.ReportAllocs()
		var cost model.Cost
		for i := 0; i < b.N; i++ {
			c, err := solveOne()
			if err != nil {
				b.Fatal(err)
			}
			cost = c
		}
		b.ReportMetric(float64(cost), "cost")
	}
	packed := func(o solve.Options) func() (model.Cost, error) {
		return func() (model.Cost, error) {
			sol, err := mtswitch.SolveExact(context.Background(), ins, parallel, o)
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		}
	}
	b.Run("Reference", func(b *testing.B) {
		run(b, func() (model.Cost, error) {
			sol, err := mtswitch.SolveExactReference(context.Background(), ins, parallel, opts)
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		})
	})
	b.Run("PackedW1", func(b *testing.B) {
		w1 := opts
		w1.Workers = 1
		run(b, packed(w1))
	})
	b.Run("Packed", func(b *testing.B) {
		run(b, packed(opts))
	})
	pruned := opts
	pruned.DisablePruning = false
	b.Run("PrunedW1", func(b *testing.B) {
		w1 := pruned
		w1.Workers = 1
		run(b, packed(w1))
	})
	b.Run("Pruned", func(b *testing.B) {
		run(b, packed(pruned))
	})
}

// BenchmarkPartitionedSolve compares the monolithic pruned exact
// engine with the partition-and-conquer solver (E20) on the cut-free
// blocked workload of `paperbench -bench8` (BENCH_PR8.json records
// the same comparison): aligned blocks with block-disjoint working
// sets, where the step-axis decomposition is exact and each window's
// frontier is tiny.  Both variants return identical costs, asserted
// by internal/partition's tests and by -bench8 itself.
func BenchmarkPartitionedSolve(b *testing.B) {
	ins, err := workload.Blocked(workload.Config{Tasks: 4, Steps: 64, Switches: 24, MeanPhase: 8, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, solveOne func() (model.Cost, error)) {
		b.ReportAllocs()
		var cost model.Cost
		for i := 0; i < b.N; i++ {
			c, err := solveOne()
			if err != nil {
				b.Fatal(err)
			}
			cost = c
		}
		b.ReportMetric(float64(cost), "cost")
	}
	b.Run("Monolithic", func(b *testing.B) {
		run(b, func() (model.Cost, error) {
			sol, err := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		})
	})
	b.Run("Partitioned", func(b *testing.B) {
		run(b, func() (model.Cost, error) {
			sol, err := partition.Solve(context.Background(), ins, parallel, solve.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		})
	})
}

// BenchmarkWorkloadShapes compares schedule quality across the four
// synthetic workload shapes (E12): structure is what
// hyperreconfiguration exploits.
func BenchmarkWorkloadShapes(b *testing.B) {
	for _, name := range []string{"phased", "bursty", "markov", "uniform"} {
		gen := workload.Generators()[name]
		ins, err := gen(workload.Config{Tasks: 4, Steps: 64, Switches: 12, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var cost model.Cost
			for i := 0; i < b.N; i++ {
				res, err := ga.Optimize(context.Background(), ins, parallel, benchGA)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Solution.Cost
			}
			b.ReportMetric(100*float64(cost)/float64(ins.DisabledCost()), "pct-of-disabled")
		})
	}
}

// BenchmarkCrossoverOperators compares the GA's recombination
// operators on the paper trace (ablation).
func BenchmarkCrossoverOperators(b *testing.B) {
	tr := paperTrace(b)
	ins, err := tr.MTInstance(shyra.GranularityDelta)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []ga.CrossoverKind{ga.CrossUniform, ga.CrossTwoPoint, ga.CrossTaskRow} {
		b.Run(kind.String(), func(b *testing.B) {
			var cost model.Cost
			for i := 0; i < b.N; i++ {
				cfg := benchGA
				cfg.Crossover = kind
				res, err := ga.Optimize(context.Background(), ins, parallel, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Solution.Cost
			}
			b.ReportMetric(float64(cost), "cost")
		})
	}
}

// BenchmarkMTDAG measures the Multi Task DAG model's joint DP (E13) on
// a coarse-grained two-task workload.
func BenchmarkMTDAG(b *testing.B) {
	levels := func() []model.Hypercontext {
		return []model.Hypercontext{
			{Name: "local", PerStep: 1, Sat: bitset.FromMembers(3, 0)},
			{Name: "row", PerStep: 3, Sat: bitset.FromMembers(3, 0, 1)},
			{Name: "global", PerStep: 7, Sat: bitset.Full(3)},
		}
	}
	mk := func(name string, v model.Cost, seq []int) mtdag.Task {
		inst, err := dag.Chain(3, levels(), seq, 1)
		if err != nil {
			b.Fatal(err)
		}
		return mtdag.Task{Name: name, V: v, Inst: inst}
	}
	seqA := make([]int, 64)
	seqB := make([]int, 64)
	for i := range seqA {
		if i%8 < 3 {
			seqA[i] = 1
		}
		if i%16 == 9 {
			seqB[i] = 2
		}
	}
	ins, err := mtdag.New([]mtdag.Task{mk("A", 2, seqA), mk("B", 4, seqB)})
	if err != nil {
		b.Fatal(err)
	}
	var cost model.Cost
	for i := 0; i < b.N; i++ {
		sol, err := mtdag.Solve(context.Background(), ins, parallel)
		if err != nil {
			b.Fatal(err)
		}
		cost = sol.Cost
	}
	b.ReportMetric(float64(cost), "cost")
}

// BenchmarkAnneal measures the simulated-annealing ablation on the
// paper trace.
func BenchmarkAnneal(b *testing.B) {
	tr := paperTrace(b)
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		b.Fatal(err)
	}
	var cost model.Cost
	for i := 0; i < b.N; i++ {
		res, err := ga.Anneal(context.Background(), ins, parallel, solve.Options{Iterations: 5000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cost = res.Solution.Cost
	}
	b.ReportMetric(float64(cost), "cost")
}

// BenchmarkReplay measures the hypercontext-gated replay (end-to-end
// schedule verification).
func BenchmarkReplay(b *testing.B) {
	a, err := core.RunPaperExperiment(context.Background(), core.Options{Solve: benchGA, SkipBeam: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.VerifyReplay(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMesh runs the reconfigurable-mesh workload analysis (E15):
// execute the rotate-and-or program, extract delta requirements and
// optimize.
func BenchmarkMesh(b *testing.B) {
	input := []bool{true, false, false, true, false, false, true, false}
	var cost model.Cost
	for i := 0; i < b.N; i++ {
		prog, err := rmesh.RotateAndOr(8, 8, input)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := rmesh.Run(prog)
		if err != nil {
			b.Fatal(err)
		}
		ins, err := tr.MTInstanceDelta()
		if err != nil {
			b.Fatal(err)
		}
		res, err := ga.Optimize(context.Background(), ins, parallel, benchGA)
		if err != nil {
			b.Fatal(err)
		}
		cost = res.Solution.Cost
	}
	b.ReportMetric(float64(cost), "cost")
}

// BenchmarkAllApps ensures every bundled program still executes inside
// the benchmark suite (guards against app regressions).
func BenchmarkAllApps(b *testing.B) {
	catalog := apps.Catalog()
	names := core.AppNames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			p, err := catalog[name]()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := shyra.Run(p, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}
