// Integration tests asserting the paper's headline claims end to end.
package repro

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/shyra"
	"repro/internal/solve"
)

// TestPaperHeadlineOrdering is the reproduction's central claim: on the
// paper's workload, partial multi-task hyperreconfiguration beats the
// optimal single-task schedule, which beats disabling
// hyperreconfiguration — under every requirement granularity.
func TestPaperHeadlineOrdering(t *testing.T) {
	for _, g := range []shyra.Granularity{shyra.GranularityBit, shyra.GranularityUnit, shyra.GranularityDelta} {
		tr, err := core.CounterTrace(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.AnalyzeTrace(context.Background(), tr, core.Options{
			Granularity: g,
			Solve:       solve.Options{Pop: 60, Generations: 120, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		best := a.Best()
		if best.Cost >= a.SingleOpt.Cost {
			t.Errorf("%v: multi-task %d not below single-task %d", g, best.Cost, a.SingleOpt.Cost)
		}
		// Under unit granularity the single-task optimum may exceed the
		// disabled baseline (W is pure overhead); multi-task never does
		// on this workload.
		if best.Cost >= a.Disabled {
			t.Errorf("%v: multi-task %d not below disabled %d", g, best.Cost, a.Disabled)
		}
		if best.Cost < a.Bound {
			t.Errorf("%v: multi-task %d below lower bound %d", g, best.Cost, a.Bound)
		}
	}
}

// TestPaperDisabledBaseline pins the disabled-baseline formula n·48
// (the paper's 5280 for n=110; 3840 for our n=80 trace).
func TestPaperDisabledBaseline(t *testing.T) {
	tr, err := core.CounterTrace(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		t.Fatal(err)
	}
	if got := ins.DisabledCost(); got != model.Cost(tr.Len()*shyra.ConfigBits) {
		t.Fatalf("disabled = %d, want n·48 = %d", got, tr.Len()*shyra.ConfigBits)
	}
	if tr.Len() != 80 {
		t.Fatalf("trace length = %d, want 80", tr.Len())
	}
}

// TestEndToEndScheduleSoundness solves, serializes mentally aside — and
// replays the best multi-task schedule on the hypercontext-gated
// machine: the computation must be unchanged while uploading fewer
// bits than the disabled machine.
func TestEndToEndScheduleSoundness(t *testing.T) {
	a, err := core.RunPaperExperiment(context.Background(), core.Options{
		Granularity: shyra.GranularityDelta,
		Solve:       solve.Options{Pop: 40, Generations: 60, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.VerifyReplay()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalUploaded >= a.Trace.Len()*shyra.ConfigBits {
		t.Fatalf("gated machine uploaded %d bits, disabled machine uploads %d",
			rep.TotalUploaded, a.Trace.Len()*shyra.ConfigBits)
	}
}

// TestSolversAgreeOnPaperWorkload cross-checks all multi-task solvers
// on the paper instance (they all reach 1304 at bit granularity).
func TestSolversAgreeOnPaperWorkload(t *testing.T) {
	tr, err := core.CounterTrace(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		t.Fatal(err)
	}
	al, err := mtswitch.SolveAligned(context.Background(), ins, parallel)
	if err != nil {
		t.Fatal(err)
	}
	beam, err := mtswitch.SolveExact(context.Background(), ins, parallel, solve.Options{MaxStates: 2000, MaxCandidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	gaRes, err := ga.Optimize(context.Background(), ins, parallel, solve.Options{Pop: 60, Generations: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := ga.Anneal(context.Background(), ins, parallel, solve.Options{Iterations: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if al.Cost != 1304 || beam.Cost != 1304 || gaRes.Solution.Cost != 1304 || sa.Solution.Cost != 1304 {
		t.Fatalf("solver disagreement: aligned=%d beam=%d ga=%d sa=%d, want 1304",
			al.Cost, beam.Cost, gaRes.Solution.Cost, sa.Solution.Cost)
	}
}
