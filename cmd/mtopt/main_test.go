package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/solve"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestRunAllSolversWithFigures(t *testing.T) {
	out, err := capture(t, func() error {
		return run("counterdd", "", "all", "parallel", "delta", true, 30, 40, 1, 500, 2, "", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aligned", "beam", "ga", "Figure 3", "Figure 2", "MUX hyper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunSequentialUpload(t *testing.T) {
	out, err := capture(t, func() error {
		return run("toggle", "", "aligned", "sequential", "bit", false, 10, 10, 1, 100, 0, "", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "task-sequential") {
		t.Fatalf("upload mode not reflected:\n%s", out)
	}
}

func TestRunFromCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "reqs.csv")
	content := "A:2:2,B:1:1\n10,1\n01,0\n"
	if err := os.WriteFile(csvPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run("", csvPath, "ga", "parallel", "bit", false, 10, 10, 1, 100, 0, "", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "m=2 tasks, n=2 steps") {
		t.Fatalf("CSV instance not loaded:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("counter", "", "nope", "parallel", "bit", false, 10, 10, 1, 100, 0, "", false)
	}); err == nil {
		t.Fatal("accepted unknown solver")
	}
	if _, err := capture(t, func() error {
		return run("counter", "", "ga", "nope", "bit", false, 10, 10, 1, 100, 0, "", false)
	}); err == nil {
		t.Fatal("accepted unknown upload mode")
	}
	if _, err := capture(t, func() error {
		return run("counter", "", "ga", "parallel", "nope", false, 10, 10, 1, 100, 0, "", false)
	}); err == nil {
		t.Fatal("accepted unknown granularity")
	}
	if _, err := capture(t, func() error {
		return run("nope", "", "ga", "parallel", "bit", false, 10, 10, 1, 100, 0, "", false)
	}); err == nil {
		t.Fatal("accepted unknown app")
	}
	if _, err := capture(t, func() error {
		return run("", "/nonexistent.csv", "ga", "parallel", "bit", false, 10, 10, 1, 100, 0, "", false)
	}); err == nil {
		t.Fatal("accepted missing CSV")
	}
}

func TestRunStatsFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run("toggle", "", "aligned", "parallel", "bit", false, 10, 10, 1, 100, 0, "", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stats: states=") || !strings.Contains(out, "wall=") {
		t.Fatalf("-stats did not print run statistics:\n%s", out)
	}
}

func TestUnknownSolverErrorListsRegistered(t *testing.T) {
	_, err := capture(t, func() error {
		return run("counter", "", "nope", "parallel", "bit", false, 10, 10, 1, 100, 0, "", false)
	})
	var unknown *solve.UnknownSolverError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %v (%T) is not an UnknownSolverError", err, err)
	}
	if len(unknown.Registered) == 0 {
		t.Fatalf("typed error carries no registered solvers: %v", err)
	}
}
