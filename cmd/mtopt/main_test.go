package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/solve"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestRunAllSolversWithFigures(t *testing.T) {
	out, err := capture(t, func() error {
		return run("counterdd", "", "all", "parallel", "delta", true, 30, 40, 1, 500, 2, 0, "", false, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aligned", "beam", "ga", "Figure 3", "Figure 2", "MUX hyper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunSequentialUpload(t *testing.T) {
	out, err := capture(t, func() error {
		return run("toggle", "", "aligned", "sequential", "bit", false, 10, 10, 1, 100, 0, 0, "", false, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "task-sequential") {
		t.Fatalf("upload mode not reflected:\n%s", out)
	}
}

func TestRunFromCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "reqs.csv")
	content := "A:2:2,B:1:1\n10,1\n01,0\n"
	if err := os.WriteFile(csvPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return run("", csvPath, "ga", "parallel", "bit", false, 10, 10, 1, 100, 0, 0, "", false, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "m=2 tasks, n=2 steps") {
		t.Fatalf("CSV instance not loaded:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("counter", "", "nope", "parallel", "bit", false, 10, 10, 1, 100, 0, 0, "", false, "", 0, "")
	}); err == nil {
		t.Fatal("accepted unknown solver")
	}
	if _, err := capture(t, func() error {
		return run("counter", "", "ga", "nope", "bit", false, 10, 10, 1, 100, 0, 0, "", false, "", 0, "")
	}); err == nil {
		t.Fatal("accepted unknown upload mode")
	}
	if _, err := capture(t, func() error {
		return run("counter", "", "ga", "parallel", "nope", false, 10, 10, 1, 100, 0, 0, "", false, "", 0, "")
	}); err == nil {
		t.Fatal("accepted unknown granularity")
	}
	if _, err := capture(t, func() error {
		return run("nope", "", "ga", "parallel", "bit", false, 10, 10, 1, 100, 0, 0, "", false, "", 0, "")
	}); err == nil {
		t.Fatal("accepted unknown app")
	}
	if _, err := capture(t, func() error {
		return run("", "/nonexistent.csv", "ga", "parallel", "bit", false, 10, 10, 1, 100, 0, 0, "", false, "", 0, "")
	}); err == nil {
		t.Fatal("accepted missing CSV")
	}
}

func TestRunStatsFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run("toggle", "", "aligned", "parallel", "bit", false, 10, 10, 1, 100, 0, 0, "", true, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stats: states=") || !strings.Contains(out, "wall=") {
		t.Fatalf("-stats did not print run statistics:\n%s", out)
	}
}

func TestRunCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "dp.ckpt")

	plain, err := capture(t, func() error {
		return run("counter", "", "exact", "parallel", "bit", false, 10, 10, 1, 100, 1, 0, "", false, "", 0, "")
	})
	if err != nil {
		t.Fatal(err)
	}

	// Write a checkpoint every 2 steps; the file left behind is the
	// final (fully advanced) snapshot.
	withCkpt, err := capture(t, func() error {
		return run("counter", "", "exact", "parallel", "bit", false, 10, 10, 1, 100, 1, 0, "", false, ckpt, 2, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withCkpt, "checkpoint written to") {
		t.Fatalf("no checkpoint confirmation in:\n%s", withCkpt)
	}
	cost := ""
	for _, line := range strings.Split(plain, "\n") {
		if strings.HasPrefix(line, "exact") {
			cost = line
		}
	}
	if cost == "" || !strings.Contains(withCkpt, cost) {
		t.Fatalf("checkpointed run diverged from plain run.\nplain:\n%s\ncheckpointed:\n%s", plain, withCkpt)
	}

	resumed, err := capture(t, func() error {
		return run("ignored", "", "exact", "parallel", "bit", false, 10, 10, 1, 100, 1, 0, "", true, "", 0, ckpt)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCost := cost[:strings.Index(cost, " (")] // "exact    cost=N" prefix
	if !strings.Contains(resumed, strings.TrimSpace(strings.Fields(wantCost)[1])) {
		t.Fatalf("resumed run lost the cost %q:\n%s", wantCost, resumed)
	}
	if !strings.Contains(resumed, "resumed exact from") || !strings.Contains(resumed, "stats:") {
		t.Fatalf("resume output malformed:\n%s", resumed)
	}

	// Checkpoint/resume guardrails.
	if _, err := capture(t, func() error {
		return run("counter", "", "all", "parallel", "bit", false, 10, 10, 1, 100, 1, 0, "", false, ckpt, 0, "")
	}); err == nil {
		t.Fatal("-checkpoint with -solver all accepted")
	}
	if _, err := capture(t, func() error {
		return run("counter", "", "exact", "parallel", "bit", true, 10, 10, 1, 100, 1, 0, "", false, "", 0, ckpt)
	}); err == nil {
		t.Fatal("-fig with -resume accepted")
	}
	if _, err := capture(t, func() error {
		return run("counter", "", "exact", "parallel", "bit", false, 10, 10, 1, 100, 1, 0, "", false, "", 0, filepath.Join(dir, "missing.ckpt"))
	}); err == nil {
		t.Fatal("missing resume file accepted")
	}
	if _, err := capture(t, func() error {
		return run("counter", "", "ga", "parallel", "bit", false, 10, 10, 1, 100, 1, 0, "", false, ckpt, 0, "")
	}); err == nil {
		t.Fatal("-checkpoint with non-steppable solver accepted")
	}
}

func TestUnknownSolverErrorListsRegistered(t *testing.T) {
	_, err := capture(t, func() error {
		return run("counter", "", "nope", "parallel", "bit", false, 10, 10, 1, 100, 0, 0, "", false, "", 0, "")
	})
	var unknown *solve.UnknownSolverError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %v (%T) is not an UnknownSolverError", err, err)
	}
	if len(unknown.Registered) == 0 {
		t.Fatalf("typed error carries no registered solvers: %v", err)
	}
}
