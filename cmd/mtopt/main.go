// Command mtopt solves the multi-task (m=4) partial-hyperreconfiguration
// scheduling problem for an application trace or a requirements CSV.
// Solvers resolve by name through the solve registry.
//
// Usage:
//
//	mtopt -app counter -solver ga            # the paper's approach
//	mtopt -app counter -solver aligned       # aligned-DP baseline
//	mtopt -app counter -solver beam          # beam-limited exact DP
//	mtopt -app counter -solver anneal        # simulated-annealing ablation
//	mtopt -app counter -solver exact         # joint-hypercontext DP (small n)
//	mtopt -app counter -solver portfolio     # race exact+beam+ga, incumbent exchange
//	mtopt -app counter -solver all -fig      # aligned+beam+ga + Figure 2/3 charts
//	mtopt -reqs trace.csv -upload sequential # task-sequential uploads
//
// The exact and beam solvers are checkpointable: -checkpoint FILE
// -checkpoint-every N snapshots the DP engine every N steps, and
// -resume FILE continues a solve from such a snapshot (the instance
// travels inside the checkpoint, so -app/-reqs are not needed):
//
//	mtopt -app counter -solver exact -checkpoint dp.ckpt -checkpoint-every 8
//	mtopt -solver exact -resume dp.ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/profutil"
	"repro/internal/report"
	"repro/internal/shyra"
	"repro/internal/solve"
	"repro/internal/traceio"
)

func main() {
	var (
		app      = flag.String("app", "counter", "application to analyze (ignored with -reqs)")
		reqsPath = flag.String("reqs", "", "requirements CSV to analyze instead of an app trace")
		solver   = flag.String("solver", "ga", "solver: one of "+strings.Join(solve.Names(), ", ")+", or all")
		upload   = flag.String("upload", "parallel", "upload mode for hyper+reconf: parallel or sequential")
		gran     = flag.String("gran", "bit", "requirement granularity: bit, unit or delta")
		fig      = flag.Bool("fig", false, "print Figure 2/3 style charts for the best schedule")
		pop      = flag.Int("pop", 80, "GA population size")
		gens     = flag.Int("gens", 300, "GA generations")
		seed     = flag.Int64("seed", 1, "random seed for ga/anneal")
		beamN    = flag.Int("beam", 3000, "beam width for -solver beam")
		outPath  = flag.String("out", "", "write the best schedule as JSON to this file (verify with hyperverify)")
		stats    = flag.Bool("stats", false, "print per-solver run statistics (states/evals/pruned/dedup/peak/wall time)")
		workers  = flag.Int("workers", 0, "worker count for parallel solvers (0 = GOMAXPROCS)")
		parts    = flag.Int("partitions", 0, "window count for -solver exact-partitioned (0 = auto, 1 = monolithic)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the solver runs to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile after the solver runs to this file")
		ckptPath = flag.String("checkpoint", "", "write engine checkpoints to this file while solving (exact/beam only)")
		ckptN    = flag.Int("checkpoint-every", 0, "steps between checkpoints (0 with -checkpoint = once at the end)")
		resume   = flag.String("resume", "", "resume a solve from this checkpoint file instead of -app/-reqs")
	)
	flag.Parse()

	stop, err := profutil.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtopt:", err)
		os.Exit(1)
	}
	err = run(*app, *reqsPath, *solver, *upload, *gran, *fig, *pop, *gens, *seed, *beamN, *workers, *parts, *outPath, *stats,
		*ckptPath, *ckptN, *resume)
	stop()
	if err == nil {
		err = profutil.WriteHeap(*memProf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtopt:", err)
		var unknown *solve.UnknownSolverError
		if errors.As(err, &unknown) {
			fmt.Fprintf(os.Stderr, "usage: mtopt -solver {%s|all}\n",
				strings.Join(unknown.Registered, "|"))
		}
		os.Exit(1)
	}
}

func load(app, reqsPath, gran string) (*model.MTSwitchInstance, error) {
	if reqsPath != "" {
		f, err := os.Open(reqsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return traceio.ReadRequirementsCSV(f)
	}
	g, err := shyra.ParseGranularity(gran)
	if err != nil {
		return nil, err
	}
	tr, err := core.AppTrace(app)
	if err != nil {
		return nil, err
	}
	return tr.MTInstance(g)
}

// steppedSolve drives a checkpointable engine in chunks of every steps,
// snapshotting to ckptPath after each chunk (atomically: temp file +
// rename, so a crash never leaves a torn checkpoint).
func steppedSolve(ctx context.Context, eng solve.StepEngine, ckptPath string, every int) (*solve.Solution, error) {
	if every <= 0 {
		every = eng.Steps() // one chunk: checkpoint once, at the end
	}
	for {
		done, err := eng.Advance(ctx, every)
		if err != nil {
			return nil, err
		}
		if ckptPath != "" {
			data, err := eng.Checkpoint(ctx)
			if err != nil {
				return nil, err
			}
			if err := durable.AtomicWrite(ckptPath, data); err != nil {
				return nil, err
			}
		}
		if done {
			break
		}
	}
	return eng.Solution(ctx)
}

// runResumed continues a checkpointed solve.  The instance travels
// inside the checkpoint, so nothing is loaded from -app/-reqs — which
// also means instance-dependent outputs (-fig, -out) are unavailable.
func runResumed(resumePath, solver, ckptPath string, ckptN, workers, beamN int, stats bool) error {
	data, err := os.ReadFile(resumePath)
	if err != nil {
		return err
	}
	var o solve.Options
	if solver == "beam" {
		o = solve.Options{MaxStates: beamN, MaxCandidates: 4}
	}
	o.Workers = workers
	eng, err := solve.ResumeStepEngine(context.Background(), solver, data, o)
	if err != nil {
		return err
	}
	defer eng.Close()
	fmt.Printf("resumed %s from %s (%d steps)\n", solver, resumePath, eng.Steps())
	sol, err := steppedSolve(context.Background(), eng, ckptPath, ckptN)
	if err != nil {
		return err
	}
	note := ""
	if sol.Stats.Truncated {
		note = " (upper bound)"
	}
	fmt.Printf("%-8s cost=%d, exact=%t%s\n", solver, sol.Cost, sol.Exact, note)
	if stats {
		fmt.Printf("  stats: states=%d evals=%d pruned=%d dedup=%d peak=%d wall=%s\n",
			sol.Stats.StatesExpanded, sol.Stats.Evaluations, sol.Stats.CandidatesPruned,
			sol.Stats.DedupHits, sol.Stats.PeakFrontier, sol.Stats.WallTime.Round(time.Microsecond))
	}
	return nil
}

func run(app, reqsPath, solver, upload, gran string, fig bool, pop, gens int, seed int64, beamN, workers, parts int, outPath string, stats bool, ckptPath string, ckptN int, resumePath string) error {
	if (ckptPath != "" || resumePath != "") && solver == "all" {
		return fmt.Errorf("-checkpoint/-resume need a single steppable solver (exact or beam), not -solver all")
	}
	if resumePath != "" {
		if fig || outPath != "" {
			return fmt.Errorf("-fig and -out need the original instance and are not supported with -resume")
		}
		return runResumed(resumePath, solver, ckptPath, ckptN, workers, beamN, stats)
	}
	ins, err := load(app, reqsPath, gran)
	if err != nil {
		return err
	}
	var opt model.CostOptions
	switch upload {
	case "parallel":
		opt = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
	case "sequential":
		opt = model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}
	default:
		return fmt.Errorf("unknown upload mode %q", upload)
	}

	fmt.Printf("instance: m=%d tasks, n=%d steps, %d switches total, %v uploads\n",
		ins.NumTasks(), ins.Steps(), ins.TotalLocalSwitches(), opt.HyperUpload)
	fmt.Printf("disabled baseline: %d\n", ins.DisabledCost())
	fmt.Printf("lower bound:       %d\n", mtswitch.LowerBound(ins, opt))

	best := (*solve.Solution)(nil)
	record := func(name string, sol *solve.Solution) {
		hypers := core.HyperCount(sol.MTSched)
		note := ""
		if sol.Stats.Truncated {
			note = " (upper bound)"
		}
		fmt.Printf("%-8s cost=%d (%.1f%% of disabled), partial hyper steps=%d%s\n",
			name, sol.Cost, 100*float64(sol.Cost)/float64(ins.DisabledCost()), hypers, note)
		if stats {
			fmt.Printf("  stats: states=%d evals=%d pruned=%d dedup=%d peak=%d exact=%t wall=%s\n",
				sol.Stats.StatesExpanded, sol.Stats.Evaluations, sol.Stats.CandidatesPruned,
				sol.Stats.DedupHits, sol.Stats.PeakFrontier, sol.Exact,
				sol.Stats.WallTime.Round(time.Microsecond))
			if sol.Stats.StatesPruned > 0 || sol.Stats.PreprocessReduction > 0 || sol.Stats.BudgetDropped > 0 {
				fmt.Printf("  prune: cut=%d (dominance=%d bound=%d) preprocess-cells=%d budget-dropped=%d\n",
					sol.Stats.StatesPruned, sol.Stats.DominanceHits, sol.Stats.BoundCutoffs,
					sol.Stats.PreprocessReduction, sol.Stats.BudgetDropped)
			}
			if sol.Stats.Partitions > 0 {
				fmt.Printf("  partition: parts=%d cut-columns=%d stitch-bound=%d stitch=%s\n",
					sol.Stats.Partitions, sol.Stats.CutColumns, sol.Stats.StitchBound,
					sol.Stats.StitchTime.Round(time.Microsecond))
			}
			for _, c := range sol.Contenders {
				mark := "-"
				if c.Won {
					mark = "*"
				}
				outcome := "cancelled (lost the race)"
				switch {
				case c.Finished && c.Direct:
					outcome = fmt.Sprintf("direct dispatch, cost=%d exact=%t", c.Cost, c.Exact)
				case c.Finished:
					outcome = fmt.Sprintf("cost=%d exact=%t", c.Cost, c.Exact)
				case c.Err != "":
					outcome = "failed: " + c.Err
				}
				fmt.Printf("  %s %-18s %-32s states=%d wall=%s\n",
					mark, c.Solver, outcome, c.Stats.StatesExpanded, c.WallTime.Round(time.Microsecond))
			}
			if len(sol.Contenders) > 0 && sol.Stats.IncumbentTightenings > 0 {
				fmt.Printf("  exchange: exact DP adopted %d incumbent tightenings\n",
					sol.Stats.IncumbentTightenings)
			}
		}
		if best == nil || sol.Cost < best.Cost {
			best = sol
		}
	}

	names := []string{solver}
	if solver == "all" {
		names = []string{"aligned", "beam", "ga"}
	}
	mtInst := solve.NewMT(ins, opt)
	for _, name := range names {
		var o solve.Options
		switch name {
		case "beam":
			o = solve.Options{MaxStates: beamN, MaxCandidates: 4}
		case "ga", "anneal":
			o = solve.Options{Pop: pop, Generations: gens, Seed: seed}
		case "exact-partitioned":
			o = solve.Options{Partitions: parts}
		case "portfolio":
			// GA knobs feed the heuristic scouts; MaxStates is left zero
			// so the exact lane stays uncapped (the beam lane defaults
			// its own width).
			o = solve.Options{Pop: pop, Generations: gens, Seed: seed, Partitions: parts}
		}
		o.Workers = workers
		var sol *solve.Solution
		if ckptPath != "" {
			eng, err := solve.NewStepEngine(context.Background(), name, mtInst, o)
			if err != nil {
				return err
			}
			sol, err = steppedSolve(context.Background(), eng, ckptPath, ckptN)
			eng.Close()
			if err != nil {
				return err
			}
			fmt.Printf("checkpoint written to %s\n", ckptPath)
		} else {
			sol, err = solve.Run(context.Background(), name, mtInst, o)
			if err != nil {
				return err
			}
		}
		record(name, sol)
	}

	if outPath != "" && best != nil {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := traceio.WriteScheduleJSON(f, ins, best.MTSched); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("best schedule written to %s\n", outPath)
	}

	if fig && best != nil {
		names := make([]string, ins.NumTasks())
		for j, t := range ins.Tasks {
			names[j] = t.Name
		}
		fmt.Println("\nFigure 3 — partial hyperreconfiguration operations (# = hyper, . = no-hyper):")
		fmt.Print(report.HyperMap(names, best.MTSched))
		fmt.Println("\nFigure 2 — per-task activity (used = requirement size, avail = hypercontext size, base-36 digits):")
		cm, err := report.ContextMap(ins, best.MTSched)
		if err != nil {
			return err
		}
		fmt.Print(cm)
	}
	return nil
}
