// Command phcopt solves single-task hyperreconfiguration scheduling
// (the partition-into-hypercontexts problem) for an application trace
// or a requirements CSV, flattened to the m=1 view.  Solvers resolve by
// name through the solve registry ("dp" is an alias for "exact").
//
// Usage:
//
//	phcopt -app counter                     # exact DP on the counter trace
//	phcopt -app counter -solver fast        # O(n·(L+K)) exact DP
//	phcopt -app counter -solver greedy      # greedy heuristic
//	phcopt -app counter -solver interval -k 8
//	phcopt -app counter -solver changeover  # changeover-cost variant
//	phcopt -reqs trace.csv -solver dp       # analyze an exported CSV
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profutil"
	"repro/internal/report"
	"repro/internal/shyra"
	"repro/internal/solve"
	"repro/internal/traceio"
)

func main() {
	var (
		app      = flag.String("app", "counter", "application to analyze (ignored with -reqs)")
		reqsPath = flag.String("reqs", "", "requirements CSV to analyze instead of an app trace")
		solver   = flag.String("solver", "dp", "solver: dp (alias exact), fast, greedy, interval, changeover, bruteforce, every, none")
		k        = flag.Int("k", 8, "interval length for -solver interval")
		w        = flag.Int64("w", 0, "override hyperreconfiguration cost W (default |X|)")
		gran     = flag.String("gran", "bit", "requirement granularity: bit, unit or delta")
		stats    = flag.Bool("stats", false, "print solver run statistics (states/evals/pruned/dedup/peak/wall time)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the solver run to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile after the solver run to this file")
	)
	flag.Parse()

	stop, err := profutil.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phcopt:", err)
		os.Exit(1)
	}
	err = run(*app, *reqsPath, *solver, *k, *w, *gran, *stats)
	stop()
	if err == nil {
		err = profutil.WriteHeap(*memProf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "phcopt:", err)
		var unknown *solve.UnknownSolverError
		if errors.As(err, &unknown) {
			fmt.Fprintf(os.Stderr, "usage: phcopt -solver {%s|every|none}\n",
				strings.Join(unknown.Registered, "|"))
		}
		os.Exit(1)
	}
}

func loadSingle(app, reqsPath, gran string) (*model.SwitchInstance, error) {
	var mt *model.MTSwitchInstance
	if reqsPath != "" {
		f, err := os.Open(reqsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		mt, err = traceio.ReadRequirementsCSV(f)
		if err != nil {
			return nil, err
		}
	} else {
		g, err := shyra.ParseGranularity(gran)
		if err != nil {
			return nil, err
		}
		tr, err := core.AppTrace(app)
		if err != nil {
			return nil, err
		}
		mt, err = tr.MTInstance(g)
		if err != nil {
			return nil, err
		}
	}
	return mt.SingleTaskView()
}

func run(app, reqsPath, solver string, k int, w int64, gran string, stats bool) error {
	ins, err := loadSingle(app, reqsPath, gran)
	if err != nil {
		return err
	}
	if w > 0 {
		ins.W = model.Cost(w)
	}
	fmt.Printf("instance: n=%d steps, |X|=%d switches, W=%d\n", ins.Len(), ins.Universe, ins.W)
	fmt.Printf("disabled baseline: %d\n", ins.DisabledCost())
	fmt.Printf("lower bound:       %d\n", ins.LowerBound())

	switch solver {
	case "every":
		fmt.Printf("every-step baseline: %d\n", ins.EveryStepCost())
		return nil
	case "none":
		return nil
	}

	name := solver
	if name == "dp" {
		name = "exact"
	}
	sol, err := solve.Run(context.Background(), name, solve.NewSwitch(ins), solve.Options{IntervalK: k})
	if err != nil {
		return err
	}

	fmt.Printf("solver %s: cost=%d (%.1f%% of disabled), hyperreconfigurations=%d\n",
		solver, sol.Cost, 100*float64(sol.Cost)/float64(ins.DisabledCost()), len(sol.Seg.Starts))
	if stats {
		fmt.Printf("stats: states=%d evals=%d pruned=%d dedup=%d peak=%d exact=%t wall=%s\n",
			sol.Stats.StatesExpanded, sol.Stats.Evaluations, sol.Stats.CandidatesPruned,
			sol.Stats.DedupHits, sol.Stats.PeakFrontier, sol.Exact,
			sol.Stats.WallTime.Round(time.Microsecond))
	}
	fmt.Println("hyperreconfiguration steps:")
	fmt.Println("  " + report.SegmentsLine(ins.Len(), sol.Seg.Starts))
	return nil
}
