// Command phcopt solves single-task hyperreconfiguration scheduling
// (the partition-into-hypercontexts problem) for an application trace
// or a requirements CSV, flattened to the m=1 view.
//
// Usage:
//
//	phcopt -app counter                     # exact DP on the counter trace
//	phcopt -app counter -solver greedy      # greedy heuristic
//	phcopt -app counter -solver interval -k 8
//	phcopt -app counter -solver changeover  # changeover-cost variant
//	phcopt -reqs trace.csv -solver dp       # analyze an exported CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/phc"
	"repro/internal/report"
	"repro/internal/shyra"
	"repro/internal/traceio"
)

func main() {
	var (
		app      = flag.String("app", "counter", "application to analyze (ignored with -reqs)")
		reqsPath = flag.String("reqs", "", "requirements CSV to analyze instead of an app trace")
		solver   = flag.String("solver", "dp", "solver: dp, greedy, interval, changeover, every, none")
		k        = flag.Int("k", 8, "interval length for -solver interval")
		w        = flag.Int64("w", 0, "override hyperreconfiguration cost W (default |X|)")
		gran     = flag.String("gran", "bit", "requirement granularity: bit, unit or delta")
	)
	flag.Parse()

	if err := run(*app, *reqsPath, *solver, *k, *w, *gran); err != nil {
		fmt.Fprintln(os.Stderr, "phcopt:", err)
		os.Exit(1)
	}
}

func loadSingle(app, reqsPath, gran string) (*model.SwitchInstance, error) {
	var mt *model.MTSwitchInstance
	if reqsPath != "" {
		f, err := os.Open(reqsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		mt, err = traceio.ReadRequirementsCSV(f)
		if err != nil {
			return nil, err
		}
	} else {
		g, err := shyra.ParseGranularity(gran)
		if err != nil {
			return nil, err
		}
		tr, err := core.AppTrace(app)
		if err != nil {
			return nil, err
		}
		mt, err = tr.MTInstance(g)
		if err != nil {
			return nil, err
		}
	}
	return mt.SingleTaskView()
}

func run(app, reqsPath, solver string, k int, w int64, gran string) error {
	ins, err := loadSingle(app, reqsPath, gran)
	if err != nil {
		return err
	}
	if w > 0 {
		ins.W = model.Cost(w)
	}
	fmt.Printf("instance: n=%d steps, |X|=%d switches, W=%d\n", ins.Len(), ins.Universe, ins.W)
	fmt.Printf("disabled baseline: %d\n", ins.DisabledCost())
	fmt.Printf("lower bound:       %d\n", ins.LowerBound())

	var sol *phc.Solution
	switch solver {
	case "dp":
		sol, err = phc.SolveSwitch(ins)
	case "greedy":
		sol, err = phc.Greedy(ins)
	case "interval":
		sol, err = phc.FixedInterval(ins, k)
	case "changeover":
		sol, err = phc.SolveChangeover(ins)
	case "every":
		fmt.Printf("every-step baseline: %d\n", ins.EveryStepCost())
		return nil
	case "none":
		return nil
	default:
		return fmt.Errorf("unknown solver %q", solver)
	}
	if err != nil {
		return err
	}

	fmt.Printf("solver %s: cost=%d (%.1f%% of disabled), hyperreconfigurations=%d\n",
		solver, sol.Cost, 100*float64(sol.Cost)/float64(ins.DisabledCost()), len(sol.Seg.Starts))
	fmt.Println("hyperreconfiguration steps:")
	fmt.Println("  " + report.SegmentsLine(ins.Len(), sol.Seg.Starts))
	return nil
}
