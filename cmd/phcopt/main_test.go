package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/solve"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestRunSolvers(t *testing.T) {
	for _, solver := range []string{"dp", "greedy", "interval", "changeover"} {
		out, err := capture(t, func() error { return run("counter", "", solver, 8, 0, "bit", false) })
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		if !strings.Contains(out, "solver "+solver) {
			t.Fatalf("%s: missing result line:\n%s", solver, out)
		}
		if !strings.Contains(out, "hyperreconfiguration steps:") {
			t.Fatalf("%s: missing segments chart:\n%s", solver, out)
		}
	}
}

func TestRunBaselineModes(t *testing.T) {
	out, err := capture(t, func() error { return run("counter", "", "every", 0, 0, "bit", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "every-step baseline") {
		t.Fatalf("missing baseline:\n%s", out)
	}
	out, err = capture(t, func() error { return run("counter", "", "none", 0, 0, "bit", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "disabled baseline: 3840") {
		t.Fatalf("missing instance summary:\n%s", out)
	}
}

func TestRunWOverride(t *testing.T) {
	a, err := capture(t, func() error { return run("counter", "", "dp", 0, 0, "bit", false) })
	if err != nil {
		t.Fatal(err)
	}
	b, err := capture(t, func() error { return run("counter", "", "dp", 0, 5, "bit", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a, "W=48") || !strings.Contains(b, "W=5") {
		t.Fatalf("W override not reflected:\na=%s\nb=%s", a, b)
	}
	// With a tiny W the optimal schedule hyperreconfigures more.
	if strings.Contains(b, "hyperreconfigurations=1\n") {
		t.Fatalf("W=5 should produce a multi-segment schedule:\n%s", b)
	}
}

func TestRunFromCSV(t *testing.T) {
	// Export requirements via the shyra path format by hand.
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "reqs.csv")
	content := "A:2:2,B:1:1\n10,1\n01,0\n11,1\n"
	if err := os.WriteFile(csvPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run("", csvPath, "dp", 0, 0, "bit", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n=3 steps, |X|=3 switches") {
		t.Fatalf("CSV instance not loaded:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run("counter", "", "nope", 0, 0, "bit", false) }); err == nil {
		t.Fatal("accepted unknown solver")
	}
	if _, err := capture(t, func() error { return run("nope", "", "dp", 0, 0, "bit", false) }); err == nil {
		t.Fatal("accepted unknown app")
	}
	if _, err := capture(t, func() error { return run("counter", "", "dp", 0, 0, "nope", false) }); err == nil {
		t.Fatal("accepted unknown granularity")
	}
	if _, err := capture(t, func() error { return run("", "/nonexistent.csv", "dp", 0, 0, "bit", false) }); err == nil {
		t.Fatal("accepted missing CSV")
	}
	if _, err := capture(t, func() error { return run("counter", "", "interval", 0, 0, "bit", false) }); err == nil {
		t.Fatal("accepted interval k=0")
	}
}

func TestRunStatsFlag(t *testing.T) {
	withStats, err := capture(t, func() error { return run("counter", "", "dp", 0, 0, "bit", true) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(withStats, "stats: states=") || !strings.Contains(withStats, "wall=") {
		t.Fatalf("-stats did not print run statistics:\n%s", withStats)
	}
	without, err := capture(t, func() error { return run("counter", "", "dp", 0, 0, "bit", false) })
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without, "stats: states=") {
		t.Fatalf("statistics printed without -stats:\n%s", without)
	}
}

func TestUnknownSolverErrorListsRegistered(t *testing.T) {
	_, err := capture(t, func() error { return run("counter", "", "nope", 0, 0, "bit", false) })
	var unknown *solve.UnknownSolverError
	if !errors.As(err, &unknown) {
		t.Fatalf("error %v (%T) is not an UnknownSolverError", err, err)
	}
	if len(unknown.Registered) == 0 || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("typed error does not list registered solvers: %v", err)
	}
}
