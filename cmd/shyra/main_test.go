package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run("", true, false, "", "", "bit") })
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"counter", "counterdd", "adder", "lfsr", "popcount", "toggle"} {
		if !strings.Contains(out, name) {
			t.Errorf("list output missing %q", name)
		}
	}
}

func TestRunSummary(t *testing.T) {
	out, err := capture(t, func() error { return run("counter", false, false, "", "", "bit") })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reconfiguration steps: 80") {
		t.Fatalf("missing step count:\n%s", out)
	}
	if !strings.Contains(out, "hyperreconfiguration-disabled cost: 3840") {
		t.Fatalf("missing disabled cost:\n%s", out)
	}
}

func TestRunSteps(t *testing.T) {
	out, err := capture(t, func() error { return run("toggle", false, true, "", "", "bit") })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "use=[LUT1 ]") {
		t.Fatalf("missing step listing:\n%s", out)
	}
}

func TestRunExports(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	reqsPath := filepath.Join(dir, "reqs.csv")
	_, err := capture(t, func() error { return run("lfsr", false, false, tracePath, reqsPath, "delta") })
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tracePath, reqsPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("export missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("export %s empty", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run("nope", false, false, "", "", "bit") }); err == nil {
		t.Fatal("accepted unknown app")
	}
	if _, err := capture(t, func() error { return run("counter", false, false, "", "", "nope") }); err == nil {
		t.Fatal("accepted unknown granularity")
	}
	if _, err := capture(t, func() error { return run("counter", false, false, "/nonexistent/dir/x.json", "", "bit") }); err == nil {
		t.Fatal("accepted unwritable trace path")
	}
	if _, err := capture(t, func() error { return run("counter", false, false, "", "/nonexistent/dir/x.csv", "bit") }); err == nil {
		t.Fatal("accepted unwritable reqs path")
	}
}
