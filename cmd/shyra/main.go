// Command shyra runs a bundled application on the SHyRA simulator and
// reports (or exports) its reconfiguration trace.
//
// Usage:
//
//	shyra -app counter                 # run, print a summary
//	shyra -app counter -steps          # also list every traced step
//	shyra -app lfsr -trace out.json    # export the full trace as JSON
//	shyra -app adder -reqs out.csv     # export m=4 requirements as CSV
//	shyra -list                        # list bundled applications
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/shyra"
	"repro/internal/traceio"
)

func main() {
	var (
		app       = flag.String("app", "counter", "application to run (see -list)")
		list      = flag.Bool("list", false, "list bundled applications and exit")
		steps     = flag.Bool("steps", false, "print every traced step")
		tracePath = flag.String("trace", "", "write the full trace as JSON to this file")
		reqsPath  = flag.String("reqs", "", "write the m=4 requirement sequences as CSV to this file")
		gran      = flag.String("gran", "bit", "requirement granularity: bit, unit or delta")
	)
	flag.Parse()

	if err := run(*app, *list, *steps, *tracePath, *reqsPath, *gran); err != nil {
		fmt.Fprintln(os.Stderr, "shyra:", err)
		os.Exit(1)
	}
}

func run(app string, list, steps bool, tracePath, reqsPath, gran string) error {
	if list {
		for _, name := range core.AppNames() {
			fmt.Println(name)
		}
		return nil
	}
	g, err := shyra.ParseGranularity(gran)
	if err != nil {
		return err
	}

	tr, err := core.AppTrace(app)
	if err != nil {
		return err
	}
	fmt.Printf("program: %s\n", tr.Program)
	fmt.Printf("reconfiguration steps: %d\n", tr.Len())

	if steps {
		for i, st := range tr.Steps {
			use := ""
			if st.Use.LUT[0] {
				use += "LUT1 "
			}
			if st.Use.LUT[1] {
				use += "LUT2 "
			}
			fmt.Printf("%4d  pc=%-3d %-8s use=[%s]\n", i, st.PC, st.Name, use)
		}
	}

	ins, err := tr.MTInstance(g)
	if err != nil {
		return err
	}
	fmt.Printf("switch universe: %d (%s granularity)\n", ins.TotalLocalSwitches(), g)
	fmt.Printf("hyperreconfiguration-disabled cost: %d\n", ins.DisabledCost())

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := traceio.WriteTraceJSON(f, tr); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", tracePath)
	}
	if reqsPath != "" {
		f, err := os.Create(reqsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := traceio.WriteRequirementsCSV(f, ins); err != nil {
			return err
		}
		fmt.Printf("requirements written to %s\n", reqsPath)
	}
	return nil
}
