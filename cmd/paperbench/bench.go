// The -bench mode records the frontier-engine baseline: it measures
// the seed map-based frontier DP (SolveExactReference) against the
// packed-state engine at Workers=1 and Workers=GOMAXPROCS on the
// BenchmarkScalingTasks m=4 workload and writes the numbers as JSON
// (BENCH_PR3.json in the repo root is the committed baseline; see
// scripts/bench.sh and EXPERIMENTS.md E14).
//
// The -bench5 mode records the pruned-search baseline (BENCH_PR5.json,
// EXPERIMENTS.md E17): the packed engine with pruning disabled — the
// PR3 configuration — against the pruned engine on the phased m=4
// workload and the dense workload, plus the memory-budget scenario
// where pruning turns a degraded beam run back into an exact solve.
//
// The -bench6 mode records the incremental-solve baseline
// (BENCH_PR6.json, EXPERIMENTS.md E18): appending the final 10% of a
// dense trace to an already-solved stepped engine versus re-solving
// the full trace from scratch.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
	"repro/internal/workload"
)

// benchWorkload pins the measured instance to the m=4 row of
// BenchmarkScalingTasks (bench_test.go) so the JSON baseline and the
// `go test -bench` numbers describe the same computation.
var benchWorkload = workload.Config{Tasks: 4, Steps: 64, Switches: 12, Seed: 1}

// benchOpts are the beam budgets of the m=4/beam sub-benchmark.
var benchOpts = solve.Options{MaxStates: 500, MaxCandidates: 3}

// denseWorkload is the block-structured instance of EXPERIMENTS.md E17:
// requirements equal the phase working set verbatim, so preprocessing
// finds long identical-step runs and the unpruned frontier grows into
// the thousands.  The same configuration backs the dense-stress tests
// in internal/mtswitch/prune_test.go.
var denseWorkload = workload.Config{Tasks: 4, Steps: 48, Switches: 24, Density: 0.5, MeanPhase: 12, Seed: 3}

// incrWorkload is the dense instance of the -bench6 incremental
// baseline (EXPERIMENTS.md E18).  It is deliberately longer and
// narrower than denseWorkload: candidates at step i are suffix unions
// U_j(i,e), so frontier reuse on Extend requires the prefix's unions to
// have saturated — enough short dense phases must have passed that
// appending new phases no longer changes what early steps can install.
// At 8 switches, density 0.85 and ~80 phases the prefix saturates
// quickly; the E17 config (24 switches, ~4 phases) does not, and
// extending it honestly re-solves from step 0.
var incrWorkload = workload.Config{Tasks: 4, Steps: 160, Switches: 8, Density: 0.85, MeanPhase: 2, Seed: 7}

// denseBudget is the MaxFrontierBytes budget of the -bench5 degradation
// scenario: under it the unpruned engine must fall back to a beam while
// the pruned engine still solves the dense workload exactly.
const denseBudget = 128 << 10

// engineResult is one engine's measurement in the JSON baseline.
type engineResult struct {
	Engine  string `json:"engine"`  // "reference" or "packed"
	Workers int    `json:"workers"` // expansion workers (reference is single-threaded)
	// PruningEnabled is recorded explicitly per row: the PR3 baseline
	// pins pruning off (the reference engine has none), and
	// scripts/bench.sh --check must compare like with like.
	PruningEnabled bool `json:"pruning_enabled"`
	// GOMAXPROCS is recorded per row: rows measured on different
	// machines or CPU budgets must not share one global value.
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Cost        int64   `json:"cost"` // schedule cost, asserted identical across engines
	// SpeedupVsSequential and AllocRatioVsSequential compare against
	// the reference engine (reference / this, so >1 is an improvement).
	SpeedupVsSequential    float64 `json:"speedup_vs_sequential"`
	AllocRatioVsSequential float64 `json:"alloc_ratio_vs_sequential"`
}

// benchBaseline is the schema of BENCH_PR3.json.
type benchBaseline struct {
	Benchmark string          `json:"benchmark"`
	Workload  workload.Config `json:"workload"`
	MaxStates int             `json:"max_states"`
	MaxCands  int             `json:"max_candidates"`
	Engines   []engineResult  `json:"engines"`
}

// measureEngine benchmarks one solve closure with testing.Benchmark.
func measureEngine(run func() (model.Cost, error)) (testing.BenchmarkResult, model.Cost, error) {
	var cost model.Cost
	var err error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cost, err = run()
			if err != nil {
				return
			}
		}
	})
	return res, cost, err
}

// engineBench runs the engine comparison and writes the JSON baseline.
func engineBench(outPath string) error {
	ctx := context.Background()
	ins, err := workload.Phased(benchWorkload)
	if err != nil {
		return err
	}

	type entry struct {
		engine  string
		workers int
		run     func() (model.Cost, error)
	}
	solvePacked := func(workers int) func() (model.Cost, error) {
		opts := benchOpts
		opts.Workers = workers
		// The baseline tracks the PR3 packed engine; pruning (which now
		// defaults on) is measured separately by -bench5.
		opts.DisablePruning = true
		return func() (model.Cost, error) {
			sol, err := mtswitch.SolveExact(ctx, ins, parallel, opts)
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		}
	}
	entries := []entry{
		{"reference", 1, func() (model.Cost, error) {
			sol, err := mtswitch.SolveExactReference(ctx, ins, parallel, benchOpts)
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		}},
		{"packed", 1, solvePacked(1)},
	}
	// On a single-core machine the Workers=GOMAXPROCS row would repeat
	// the Workers=1 row verbatim; skip the duplicate.
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		entries = append(entries, entry{"packed", procs, solvePacked(procs)})
	}

	out := benchBaseline{
		Benchmark: "BenchmarkScalingTasks/m=4/beam (phased workload)",
		Workload:  benchWorkload,
		MaxStates: benchOpts.MaxStates,
		MaxCands:  benchOpts.MaxCandidates,
	}
	var refResult *engineResult
	for _, e := range entries {
		res, cost, err := measureEngine(e.run)
		if err != nil {
			return fmt.Errorf("%s (workers=%d): %w", e.engine, e.workers, err)
		}
		er := engineResult{
			Engine:  e.engine,
			Workers: e.workers,
			// All PR3 rows run unpruned: the reference engine has no
			// pruning layer and solvePacked disables it to match.
			PruningEnabled: false,
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
			NsPerOp:        float64(res.NsPerOp()),
			AllocsPerOp:    res.AllocsPerOp(),
			BytesPerOp:     res.AllocedBytesPerOp(),
			Cost:           int64(cost),
		}
		if refResult == nil {
			er.SpeedupVsSequential = 1
			er.AllocRatioVsSequential = 1
		} else {
			if er.Cost != refResult.Cost {
				return fmt.Errorf("%s (workers=%d) cost %d != reference cost %d",
					e.engine, e.workers, er.Cost, refResult.Cost)
			}
			if er.NsPerOp > 0 {
				er.SpeedupVsSequential = refResult.NsPerOp / er.NsPerOp
			}
			if er.AllocsPerOp > 0 {
				er.AllocRatioVsSequential = float64(refResult.AllocsPerOp) / float64(er.AllocsPerOp)
			}
		}
		out.Engines = append(out.Engines, er)
		if refResult == nil {
			refResult = &out.Engines[0]
		}
		fmt.Printf("%-10s workers=%-2d %12.0f ns/op %8d B/op %6d allocs/op  cost=%d  speedup=%.2fx  alloc-ratio=%.2fx\n",
			e.engine, e.workers, er.NsPerOp, er.BytesPerOp, er.AllocsPerOp, er.Cost,
			er.SpeedupVsSequential, er.AllocRatioVsSequential)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench baseline written to %s\n", outPath)
	return nil
}

// pruneRun is one engine variant's measurement in BENCH_PR5.json.
type pruneRun struct {
	// PruningEnabled makes the measured configuration explicit in the
	// schema instead of implicit in the field name above it.
	PruningEnabled      bool    `json:"pruning_enabled"`
	NsPerOp             float64 `json:"ns_per_op"`
	Cost                int64   `json:"cost"`
	StatesExpanded      int64   `json:"states_expanded"`
	PeakFrontier        int64   `json:"peak_frontier"`
	StatesPruned        int64   `json:"states_pruned,omitempty"`
	DominanceHits       int64   `json:"dominance_hits,omitempty"`
	BoundCutoffs        int64   `json:"bound_cutoffs,omitempty"`
	PreprocessReduction int64   `json:"preprocess_reduction,omitempty"`
}

// pruneComparison compares the PR3 packed engine (pruning disabled)
// against the pruned engine on one workload.
type pruneComparison struct {
	Workload string          `json:"workload"`
	Config   workload.Config `json:"config"`
	Unpruned pruneRun        `json:"unpruned"`
	Pruned   pruneRun        `json:"pruned"`
	// Speedup is unpruned ns/op ÷ pruned ns/op; ExpansionReduction is
	// unpruned StatesExpanded ÷ pruned StatesExpanded (>1 means the
	// pruned engine did less work).
	Speedup            float64 `json:"speedup"`
	ExpansionReduction float64 `json:"expansion_reduction"`
	// WorkersAgree records that the pruned engine returned the same
	// cost at Workers 1, 2 and 8.
	WorkersAgree bool `json:"workers_agree"`
}

// budgetRun is one engine variant's outcome under the MaxFrontierBytes
// budget of the degradation scenario.
type budgetRun struct {
	PruningEnabled bool  `json:"pruning_enabled"`
	Cost           int64 `json:"cost"`
	Degraded       bool  `json:"degraded"`
	Truncated      bool  `json:"truncated"`
	BudgetDropped  int64 `json:"budget_dropped"`
}

// budgetScenario is the -bench5 degradation scenario: a workload that
// in PR4 could only be beam-searched under the byte budget, now solved
// exactly by the pruned engine within the same budget.
type budgetScenario struct {
	Workload         string          `json:"workload"`
	Config           workload.Config `json:"config"`
	MaxFrontierBytes int64           `json:"max_frontier_bytes"`
	// OptimalCost is the unbudgeted exact optimum the budgeted runs are
	// judged against.
	OptimalCost int64     `json:"optimal_cost"`
	Unpruned    budgetRun `json:"unpruned"`
	Pruned      budgetRun `json:"pruned"`
}

// pruneBaseline is the schema of BENCH_PR5.json.
type pruneBaseline struct {
	Benchmark  string            `json:"benchmark"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Workloads  []pruneComparison `json:"workloads"`
	Budget     budgetScenario    `json:"budget"`
}

// measurePrune times one full exact solve per iteration and returns the
// measurement together with the run's statistics.
func measurePrune(ctx context.Context, ins *model.MTSwitchInstance, opts solve.Options) (pruneRun, error) {
	sol, err := mtswitch.SolveExact(ctx, ins, parallel, opts)
	if err != nil {
		return pruneRun{}, err
	}
	res, _, err := measureEngine(func() (model.Cost, error) {
		s, err := mtswitch.SolveExact(ctx, ins, parallel, opts)
		if err != nil {
			return 0, err
		}
		return s.Cost, nil
	})
	if err != nil {
		return pruneRun{}, err
	}
	return pruneRun{
		PruningEnabled:      !opts.DisablePruning,
		NsPerOp:             float64(res.NsPerOp()),
		Cost:                int64(sol.Cost),
		StatesExpanded:      sol.Stats.StatesExpanded,
		PeakFrontier:        sol.Stats.PeakFrontier,
		StatesPruned:        sol.Stats.StatesPruned,
		DominanceHits:       sol.Stats.DominanceHits,
		BoundCutoffs:        sol.Stats.BoundCutoffs,
		PreprocessReduction: sol.Stats.PreprocessReduction,
	}, nil
}

// pruneBench runs the pruning comparison and writes BENCH_PR5.json.
func pruneBench(outPath string) error {
	ctx := context.Background()
	out := pruneBaseline{
		Benchmark:  "packed engine, pruning off (PR3 baseline) vs on (E17)",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	workloads := []struct {
		name string
		gen  func(workload.Config) (*model.MTSwitchInstance, error)
		cfg  workload.Config
		opts solve.Options
		// exact marks an unbudgeted run whose cost must be identical
		// with pruning on and off.  Under the beam caps the two engines
		// keep different frontiers, so the beam row only records both
		// costs (pruning tends to improve the beam: dominance keeps the
		// stronger of two comparable states).
		exact bool
	}{
		{"phased m=4 beam", workload.Phased, benchWorkload, benchOpts, false},
		{"dense m=4 exact", workload.Dense, denseWorkload, solve.Options{}, true},
	}
	for _, w := range workloads {
		ins, err := w.gen(w.cfg)
		if err != nil {
			return err
		}
		off := w.opts
		off.DisablePruning = true
		unpruned, err := measurePrune(ctx, ins, off)
		if err != nil {
			return fmt.Errorf("%s unpruned: %w", w.name, err)
		}
		pruned, err := measurePrune(ctx, ins, w.opts)
		if err != nil {
			return fmt.Errorf("%s pruned: %w", w.name, err)
		}
		if w.exact && pruned.Cost != unpruned.Cost {
			return fmt.Errorf("%s: pruned cost %d != unpruned cost %d", w.name, pruned.Cost, unpruned.Cost)
		}
		cmp := pruneComparison{
			Workload:     w.name,
			Config:       w.cfg,
			Unpruned:     unpruned,
			Pruned:       pruned,
			WorkersAgree: true,
		}
		if pruned.NsPerOp > 0 {
			cmp.Speedup = unpruned.NsPerOp / pruned.NsPerOp
		}
		if pruned.StatesExpanded > 0 {
			cmp.ExpansionReduction = float64(unpruned.StatesExpanded) / float64(pruned.StatesExpanded)
		}
		for _, workers := range []int{1, 2, 8} {
			wopts := w.opts
			wopts.Workers = workers
			sol, err := mtswitch.SolveExact(ctx, ins, parallel, wopts)
			if err != nil {
				return fmt.Errorf("%s workers=%d: %w", w.name, workers, err)
			}
			if int64(sol.Cost) != pruned.Cost {
				cmp.WorkersAgree = false
			}
		}
		if !cmp.WorkersAgree {
			return fmt.Errorf("%s: pruned cost differs across worker counts", w.name)
		}
		out.Workloads = append(out.Workloads, cmp)
		fmt.Printf("%-16s unpruned %12.0f ns/op %9d expanded | pruned %12.0f ns/op %9d expanded | speedup=%.2fx expansion-reduction=%.2fx\n",
			w.name, unpruned.NsPerOp, unpruned.StatesExpanded,
			pruned.NsPerOp, pruned.StatesExpanded, cmp.Speedup, cmp.ExpansionReduction)
	}

	// Budget scenario: the dense workload under a byte budget the
	// unpruned frontier cannot fit.
	ins, err := workload.Dense(denseWorkload)
	if err != nil {
		return err
	}
	budgeted := func(disable bool) (budgetRun, error) {
		sol, err := mtswitch.SolveExact(ctx, ins, parallel, solve.Options{
			MaxFrontierBytes: denseBudget,
			DisablePruning:   disable,
		})
		if err != nil {
			return budgetRun{}, err
		}
		return budgetRun{
			PruningEnabled: !disable,
			Cost:           int64(sol.Cost),
			Degraded:       sol.Stats.Degraded,
			Truncated:      sol.Stats.Truncated,
			BudgetDropped:  sol.Stats.BudgetDropped,
		}, nil
	}
	unpruned, err := budgeted(true)
	if err != nil {
		return fmt.Errorf("budget unpruned: %w", err)
	}
	pruned, err := budgeted(false)
	if err != nil {
		return fmt.Errorf("budget pruned: %w", err)
	}
	optSol, err := mtswitch.SolveExact(ctx, ins, parallel, solve.Options{})
	if err != nil {
		return fmt.Errorf("budget optimum: %w", err)
	}
	optimal := int64(optSol.Cost)
	if !unpruned.Degraded {
		return fmt.Errorf("budget scenario: unpruned run did not degrade under %d bytes", int64(denseBudget))
	}
	if pruned.Degraded || pruned.Truncated {
		return fmt.Errorf("budget scenario: pruned run degraded under %d bytes", int64(denseBudget))
	}
	if pruned.Cost != optimal {
		return fmt.Errorf("budget scenario: pruned cost %d != unbudgeted optimum %d", pruned.Cost, optimal)
	}
	out.Budget = budgetScenario{
		Workload:         "dense m=4",
		Config:           denseWorkload,
		MaxFrontierBytes: denseBudget,
		OptimalCost:      optimal,
		Unpruned:         unpruned,
		Pruned:           pruned,
	}
	fmt.Printf("budget %d KiB: unpruned degraded (cost %d, dropped %d) | pruned exact (cost %d = optimum)\n",
		int64(denseBudget)>>10, unpruned.Cost, unpruned.BudgetDropped, pruned.Cost)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("pruning baseline written to %s\n", outPath)
	return nil
}

// incrBaseline is the schema of BENCH_PR6.json: the cost of appending
// the final 10% of a dense trace to an already-solved stepped engine,
// against re-solving the whole trace from scratch.
type incrBaseline struct {
	Benchmark string          `json:"benchmark"`
	Config    workload.Config `json:"config"`
	// PruningEnabled is false by construction: incremental suffix reuse
	// needs the retained per-step frames, which the engine only keeps
	// with pruning off (a pruned engine falls back to a full rebuild on
	// Extend — see DESIGN.md §10).
	PruningEnabled bool `json:"pruning_enabled"`
	PrefixSteps    int  `json:"prefix_steps"`
	SuffixSteps    int  `json:"suffix_steps"`
	// FromScratchExpanded is Stats.StatesExpanded for one solve of the
	// full trace; SuffixExpanded is the engine's ResolveExpanded after
	// Extend-ing the suffix onto the solved prefix.
	FromScratchExpanded int64 `json:"from_scratch_expanded"`
	SuffixExpanded      int64 `json:"suffix_expanded"`
	// ExpansionReduction is from-scratch ÷ suffix (>1 means the
	// incremental re-solve did less work); the baseline requires >= 5.
	ExpansionReduction float64 `json:"expansion_reduction"`
	Cost               int64   `json:"cost"`
	// WorkersAgree records that the incremental solve returned the
	// from-scratch cost at Workers 1, 2 and 8.
	WorkersAgree bool `json:"workers_agree"`
}

// incrExtend solves the first prefix steps of ins in a stepped engine,
// appends the rest, and reports the final solution plus the states the
// suffix re-solve expanded.
func incrExtend(ctx context.Context, ins *model.MTSwitchInstance, prefix int, opts solve.Options) (*solve.Solution, int64, error) {
	prefReqs := make([][]bitset.Set, len(ins.Reqs))
	for j, reqs := range ins.Reqs {
		prefReqs[j] = make([]bitset.Set, prefix)
		for i := 0; i < prefix; i++ {
			prefReqs[j][i] = reqs[i].Clone()
		}
	}
	pref, err := model.NewMTSwitchInstance(ins.Tasks, prefReqs)
	if err != nil {
		return nil, 0, err
	}
	eng, err := solve.NewStepEngine(ctx, "exact", solve.NewMT(pref, parallel), opts)
	if err != nil {
		return nil, 0, err
	}
	defer eng.Close()
	if _, err := eng.Solution(ctx); err != nil {
		return nil, 0, err
	}
	if err := eng.Extend(ctx, workload.StepRows(ins, prefix, ins.Steps())); err != nil {
		return nil, 0, err
	}
	sol, err := eng.Solution(ctx)
	if err != nil {
		return nil, 0, err
	}
	return sol, eng.ResolveExpanded(), nil
}

// incrBench measures incremental suffix re-solve against from-scratch
// and writes BENCH_PR6.json.  The scenario is the acceptance criterion
// of PR6: append the final 10% of a dense trace to a solved engine.
func incrBench(outPath string) error {
	ctx := context.Background()
	ins, err := workload.Dense(incrWorkload)
	if err != nil {
		return err
	}
	opts := solve.Options{DisablePruning: true}
	prefix := ins.Steps() * 9 / 10

	scratch, err := mtswitch.SolveExact(ctx, ins, parallel, opts)
	if err != nil {
		return fmt.Errorf("from-scratch: %w", err)
	}
	sol, suffixExpanded, err := incrExtend(ctx, ins, prefix, opts)
	if err != nil {
		return fmt.Errorf("incremental: %w", err)
	}
	if sol.Cost != scratch.Cost {
		return fmt.Errorf("incremental cost %d != from-scratch cost %d", sol.Cost, scratch.Cost)
	}
	if suffixExpanded <= 0 {
		return fmt.Errorf("suffix re-solve expanded no states (suspicious measurement)")
	}
	reduction := float64(scratch.Stats.StatesExpanded) / float64(suffixExpanded)
	if reduction < 5 {
		return fmt.Errorf("suffix re-solve expanded %d states vs %d from scratch (%.2fx < the required 5x)",
			suffixExpanded, scratch.Stats.StatesExpanded, reduction)
	}
	for _, workers := range []int{1, 2, 8} {
		wopts := opts
		wopts.Workers = workers
		wsol, _, err := incrExtend(ctx, ins, prefix, wopts)
		if err != nil {
			return fmt.Errorf("incremental workers=%d: %w", workers, err)
		}
		if wsol.Cost != scratch.Cost {
			return fmt.Errorf("incremental workers=%d cost %d != from-scratch cost %d", workers, wsol.Cost, scratch.Cost)
		}
	}

	out := incrBaseline{
		Benchmark:           "stepped engine: Extend final 10% of dense trace vs from-scratch (E18)",
		Config:              incrWorkload,
		PruningEnabled:      false,
		PrefixSteps:         prefix,
		SuffixSteps:         ins.Steps() - prefix,
		FromScratchExpanded: scratch.Stats.StatesExpanded,
		SuffixExpanded:      suffixExpanded,
		ExpansionReduction:  reduction,
		Cost:                int64(scratch.Cost),
		WorkersAgree:        true,
	}
	fmt.Printf("incremental: from-scratch %d states | suffix (%d steps) %d states | reduction=%.1fx cost=%d\n",
		out.FromScratchExpanded, out.SuffixSteps, out.SuffixExpanded, reduction, out.Cost)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("incremental baseline written to %s\n", outPath)
	return nil
}
