// The -bench mode records the frontier-engine baseline: it measures
// the seed map-based frontier DP (SolveExactReference) against the
// packed-state engine at Workers=1 and Workers=GOMAXPROCS on the
// BenchmarkScalingTasks m=4 workload and writes the numbers as JSON
// (BENCH_PR3.json in the repo root is the committed baseline; see
// scripts/bench.sh and EXPERIMENTS.md E14).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/solve"
	"repro/internal/workload"
)

// benchWorkload pins the measured instance to the m=4 row of
// BenchmarkScalingTasks (bench_test.go) so the JSON baseline and the
// `go test -bench` numbers describe the same computation.
var benchWorkload = workload.Config{Tasks: 4, Steps: 64, Switches: 12, Seed: 1}

// benchOpts are the beam budgets of the m=4/beam sub-benchmark.
var benchOpts = solve.Options{MaxStates: 500, MaxCandidates: 3}

// engineResult is one engine's measurement in the JSON baseline.
type engineResult struct {
	Engine      string  `json:"engine"`  // "reference" or "packed"
	Workers     int     `json:"workers"` // expansion workers (reference is single-threaded)
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Cost        int64   `json:"cost"` // schedule cost, asserted identical across engines
	// SpeedupVsSequential and AllocRatioVsSequential compare against
	// the reference engine (reference / this, so >1 is an improvement).
	SpeedupVsSequential    float64 `json:"speedup_vs_sequential"`
	AllocRatioVsSequential float64 `json:"alloc_ratio_vs_sequential"`
}

// benchBaseline is the schema of BENCH_PR3.json.
type benchBaseline struct {
	Benchmark  string          `json:"benchmark"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Workload   workload.Config `json:"workload"`
	MaxStates  int             `json:"max_states"`
	MaxCands   int             `json:"max_candidates"`
	Engines    []engineResult  `json:"engines"`
}

// measureEngine benchmarks one solve closure with testing.Benchmark.
func measureEngine(run func() (model.Cost, error)) (testing.BenchmarkResult, model.Cost, error) {
	var cost model.Cost
	var err error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cost, err = run()
			if err != nil {
				return
			}
		}
	})
	return res, cost, err
}

// engineBench runs the engine comparison and writes the JSON baseline.
func engineBench(outPath string) error {
	ctx := context.Background()
	ins, err := workload.Phased(benchWorkload)
	if err != nil {
		return err
	}

	type entry struct {
		engine  string
		workers int
		run     func() (model.Cost, error)
	}
	solvePacked := func(workers int) func() (model.Cost, error) {
		opts := benchOpts
		opts.Workers = workers
		return func() (model.Cost, error) {
			sol, err := mtswitch.SolveExact(ctx, ins, parallel, opts)
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		}
	}
	entries := []entry{
		{"reference", 1, func() (model.Cost, error) {
			sol, err := mtswitch.SolveExactReference(ctx, ins, parallel, benchOpts)
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		}},
		{"packed", 1, solvePacked(1)},
		{"packed", runtime.GOMAXPROCS(0), solvePacked(runtime.GOMAXPROCS(0))},
	}

	out := benchBaseline{
		Benchmark:  "BenchmarkScalingTasks/m=4/beam (phased workload)",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   benchWorkload,
		MaxStates:  benchOpts.MaxStates,
		MaxCands:   benchOpts.MaxCandidates,
	}
	var refResult *engineResult
	for _, e := range entries {
		res, cost, err := measureEngine(e.run)
		if err != nil {
			return fmt.Errorf("%s (workers=%d): %w", e.engine, e.workers, err)
		}
		er := engineResult{
			Engine:      e.engine,
			Workers:     e.workers,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Cost:        int64(cost),
		}
		if refResult == nil {
			er.SpeedupVsSequential = 1
			er.AllocRatioVsSequential = 1
		} else {
			if er.Cost != refResult.Cost {
				return fmt.Errorf("%s (workers=%d) cost %d != reference cost %d",
					e.engine, e.workers, er.Cost, refResult.Cost)
			}
			if er.NsPerOp > 0 {
				er.SpeedupVsSequential = refResult.NsPerOp / er.NsPerOp
			}
			if er.AllocsPerOp > 0 {
				er.AllocRatioVsSequential = float64(refResult.AllocsPerOp) / float64(er.AllocsPerOp)
			}
		}
		out.Engines = append(out.Engines, er)
		if refResult == nil {
			refResult = &out.Engines[0]
		}
		fmt.Printf("%-10s workers=%-2d %12.0f ns/op %8d B/op %6d allocs/op  cost=%d  speedup=%.2fx  alloc-ratio=%.2fx\n",
			e.engine, e.workers, er.NsPerOp, er.BytesPerOp, er.AllocsPerOp, er.Cost,
			er.SpeedupVsSequential, er.AllocRatioVsSequential)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench baseline written to %s (GOMAXPROCS=%d)\n", outPath, out.GOMAXPROCS)
	return nil
}
