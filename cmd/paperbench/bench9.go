// The -bench9 mode records the durability baseline (BENCH_PR9.json,
// EXPERIMENTS.md E21): what the write-ahead log costs on the solve
// path, and what a crash costs on the recovery path.
//
// Two scenarios are recorded:
//
//   - overhead: the same batch of distinct solves driven through the
//     service worker pool on an in-memory server and on durable
//     servers under each fsync policy (always, interval, never); the
//     run reports solves/s per mode, the slowdown versus in-memory,
//     and the WAL counters (appends, fsyncs, bytes) behind it;
//   - recovery: a durable server is loaded with solves plus one
//     streaming session, abandoned the way kill -9 would, and
//     reopened on the same directory — the run reports time-to-ready,
//     the warm-hit ratio on resubmission, byte-identity of the
//     replayed schedules against the pre-crash oracle, and session
//     revival.  -bench9 fails unless every resubmitted solve warm-hits
//     with a byte-identical schedule and the session revives.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/solve"
	"repro/internal/workload"
)

// scheduleBytes renders the parts of a solution a replay must preserve
// exactly — cost and schedule, not the volatile solve stats (wall_ms,
// states_expanded), which a cache hit legitimately reports differently.
func scheduleBytes(sol *solve.Solution) ([]byte, error) {
	return json.Marshal(struct {
		Cost  model.Cost
		Sched *model.MTSchedule
	}{sol.Cost, sol.MTSched})
}

// durableWorkload parameterizes the instances both scenarios solve.
var durableWorkload = workload.Config{Tasks: 4, Steps: 48, Switches: 16, Seed: 3}

// durableSmallWorkload replaces durableWorkload under -bench9small.
var durableSmallWorkload = workload.Config{Tasks: 3, Steps: 24, Switches: 8, Seed: 3}

// durOverheadRun is one fsync mode's measurement on the overhead batch.
type durOverheadRun struct {
	Mode       string  `json:"mode"` // "memory", "always", "interval", "never"
	Jobs       int     `json:"jobs"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Slowdown is this mode's wall time ÷ the in-memory wall time.
	Slowdown   float64 `json:"slowdown_vs_memory"`
	WALAppends int64   `json:"wal_appends"`
	WALFsyncs  int64   `json:"wal_fsyncs"`
	WALBytes   int64   `json:"wal_bytes"`
}

// durRecoveryScenario records the crash-and-reopen measurement.
type durRecoveryScenario struct {
	Jobs            int     `json:"jobs"`
	SessionSteps    int     `json:"session_steps"`
	LoadSeconds     float64 `json:"load_seconds"`
	ReadySeconds    float64 `json:"ready_seconds"`
	WarmHits        int     `json:"warm_hits"`
	WarmHitRatio    float64 `json:"warm_hit_ratio"`
	ByteIdentical   int     `json:"byte_identical_schedules"`
	JobsRequeued    int64   `json:"jobs_requeued"`
	SessionsRevived int64   `json:"sessions_revived"`
	CacheWarmloaded int64   `json:"cache_warmloaded"`
}

// durableBaseline is the schema of BENCH_PR9.json.
type durableBaseline struct {
	Benchmark  string              `json:"benchmark"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Small      bool                `json:"small,omitempty"`
	Overhead   []durOverheadRun    `json:"overhead"`
	Recovery   durRecoveryScenario `json:"recovery"`
}

// durableReqs builds n distinct solve requests off the workload config.
func durableReqs(cfg workload.Config, n int, solver string) ([]*service.SolveRequest, error) {
	generate := workload.Generators()["phased"]
	reqs := make([]*service.SolveRequest, n)
	for i := range reqs {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*101
		mt, err := generate(c)
		if err != nil {
			return nil, err
		}
		reqs[i] = &service.SolveRequest{Solver: solver, Instance: service.WireInstanceFrom(mt)}
	}
	return reqs, nil
}

// driveBatch submits every request and waits for all of them.
func driveBatch(s *service.Server, reqs []*service.SolveRequest) error {
	jobs := make([]*service.Job, 0, len(reqs))
	for _, req := range reqs {
		job, _, err := s.Submit(req)
		if err != nil {
			return err
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		<-job.Done()
		if _, err := job.Solution(); err != nil {
			return err
		}
	}
	return nil
}

// scrapeMetric reads one counter off the server's /metrics endpoint.
func scrapeMetric(s *service.Server, name string) int64 {
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return int64(v)
			}
		}
	}
	return 0
}

// overheadMode times the batch under one durability mode.
func overheadMode(mode string, reqs []*service.SolveRequest) (durOverheadRun, error) {
	cfg := service.Config{QueueDepth: 4096, CacheEntries: 1 << 20}
	if mode != "memory" {
		dir, err := os.MkdirTemp("", "bench9-*")
		if err != nil {
			return durOverheadRun{}, err
		}
		defer os.RemoveAll(dir)
		fsync, err := durable.ParseFsyncPolicy(mode)
		if err != nil {
			return durOverheadRun{}, err
		}
		cfg.DataDir, cfg.Fsync = dir, fsync
	}
	s, err := service.Open(cfg)
	if err != nil {
		return durOverheadRun{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	start := time.Now()
	if err := driveBatch(s, reqs); err != nil {
		return durOverheadRun{}, err
	}
	elapsed := time.Since(start)
	return durOverheadRun{
		Mode:       mode,
		Jobs:       len(reqs),
		Seconds:    elapsed.Seconds(),
		JobsPerSec: float64(len(reqs)) / elapsed.Seconds(),
		WALAppends: scrapeMetric(s, "hyperd_wal_appends_total"),
		WALFsyncs:  scrapeMetric(s, "hyperd_wal_fsyncs_total"),
		WALBytes:   scrapeMetric(s, "hyperd_wal_bytes"),
	}, nil
}

// recoveryScenario loads a durable server, abandons it mid-life and
// measures what the reopen recovers.
func recoveryScenario(cfg workload.Config, jobs int) (durRecoveryScenario, error) {
	var sc durRecoveryScenario
	dir, err := os.MkdirTemp("", "bench9-rec-*")
	if err != nil {
		return sc, err
	}
	defer os.RemoveAll(dir)
	svcCfg := service.Config{QueueDepth: 4096, CacheEntries: 1 << 20, DataDir: dir}

	reqs, err := durableReqs(cfg, jobs, "aligned")
	if err != nil {
		return sc, err
	}

	a, err := service.Open(svcCfg)
	if err != nil {
		return sc, err
	}
	loadStart := time.Now()
	oracle := make([][]byte, jobs)
	for i, req := range reqs {
		job, _, err := a.Submit(req)
		if err != nil {
			return sc, err
		}
		<-job.Done()
		sol, err := job.Solution()
		if err != nil {
			return sc, err
		}
		if oracle[i], err = scheduleBytes(sol); err != nil {
			return sc, err
		}
	}

	// One live streaming session: an opener prefix plus two batches.
	sessCfg := cfg
	sessCfg.Steps, sessCfg.Seed = 8, -11
	mt, err := workload.Generators()["phased"](sessCfg)
	if err != nil {
		return sc, err
	}
	wi := service.WireInstanceFrom(mt)
	open := *wi
	open.Reqs = wi.Reqs[:4]
	ctx := context.Background()
	sess, err := a.CreateSession(ctx, &service.SessionRequest{Solver: "exact", Instance: &open})
	if err != nil {
		return sc, err
	}
	var last *service.SessionStatus
	for _, cut := range [][2]int{{4, 6}, {6, 8}} {
		if last, err = sess.Steps(ctx, &service.SessionSteps{Reqs: wi.Reqs[cut[0]:cut[1]]}); err != nil {
			return sc, err
		}
	}
	sc.Jobs, sc.SessionSteps = jobs, last.Steps
	sc.LoadSeconds = time.Since(loadStart).Seconds()

	a.Abandon()

	readyStart := time.Now()
	b, err := service.Open(svcCfg)
	if err != nil {
		return sc, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	}()
	for b.Health().State != "ready" {
		time.Sleep(time.Millisecond)
	}
	sc.ReadySeconds = time.Since(readyStart).Seconds()

	for i, req := range reqs {
		job, _, err := b.Submit(req)
		if err != nil {
			return sc, err
		}
		<-job.Done()
		if job.Snapshot().CacheHit {
			sc.WarmHits++
		}
		sol, err := job.Solution()
		if err != nil {
			return sc, err
		}
		data, err := scheduleBytes(sol)
		if err != nil {
			return sc, err
		}
		if bytes.Equal(data, oracle[i]) {
			sc.ByteIdentical++
		}
	}
	sc.WarmHitRatio = float64(sc.WarmHits) / float64(jobs)
	sc.JobsRequeued = scrapeMetric(b, "hyperd_recovery_jobs_requeued")
	sc.SessionsRevived = scrapeMetric(b, "hyperd_recovery_sessions_revived")
	sc.CacheWarmloaded = scrapeMetric(b, "hyperd_recovery_cache_warmloaded")

	// The revived session must hold its pre-crash trace and accept
	// another batch.
	rec := httptest.NewRecorder()
	b.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/"+last.ID, nil))
	var after service.SessionStatus
	if rec.Code != 200 || json.Unmarshal(rec.Body.Bytes(), &after) != nil || after.Steps != last.Steps {
		return sc, fmt.Errorf("session %s did not survive the reopen (code %d)", last.ID, rec.Code)
	}
	return sc, nil
}

// durableBench runs the durability comparison and writes
// BENCH_PR9.json.  Under small the workload shrinks and only the
// always policy is timed next to in-memory — the recovery gates
// (full warm-hit ratio, byte identity, session revival) always run.
func durableBench(outPath string, small bool) error {
	cfg := durableWorkload
	jobs, recJobs := 96, 32
	modes := []string{"memory", "always", "interval", "never"}
	if small {
		cfg = durableSmallWorkload
		jobs, recJobs = 16, 8
		modes = []string{"memory", "always"}
	}

	reqs, err := durableReqs(cfg, jobs, "aligned")
	if err != nil {
		return err
	}
	baseline := durableBaseline{
		Benchmark:  "durable-wal",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Small:      small,
	}
	var memorySeconds float64
	for _, mode := range modes {
		run, err := overheadMode(mode, reqs)
		if err != nil {
			return fmt.Errorf("overhead %s: %w", mode, err)
		}
		if mode == "memory" {
			memorySeconds = run.Seconds
		}
		if memorySeconds > 0 {
			run.Slowdown = run.Seconds / memorySeconds
		}
		baseline.Overhead = append(baseline.Overhead, run)
		fmt.Printf("overhead %-8s %3d solves in %7.1fms = %7.1f/s (slowdown %.2fx, %d appends, %d fsyncs)\n",
			mode, run.Jobs, run.Seconds*1e3, run.JobsPerSec, run.Slowdown, run.WALAppends, run.WALFsyncs)
	}

	rec, err := recoveryScenario(cfg, recJobs)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	baseline.Recovery = rec
	fmt.Printf("recovery %d solves + %d-step session: ready in %.1fms, %d/%d warm hits, %d/%d byte-identical, %d sessions revived\n",
		rec.Jobs, rec.SessionSteps, rec.ReadySeconds*1e3, rec.WarmHits, rec.Jobs, rec.ByteIdentical, rec.Jobs, rec.SessionsRevived)

	if rec.WarmHits != rec.Jobs {
		return fmt.Errorf("recovery: %d/%d warm hits — journaled completions must all replay", rec.WarmHits, rec.Jobs)
	}
	if rec.ByteIdentical != rec.Jobs {
		return fmt.Errorf("recovery: %d/%d byte-identical schedules", rec.ByteIdentical, rec.Jobs)
	}
	if rec.SessionsRevived != 1 {
		return fmt.Errorf("recovery: %d sessions revived, want 1", rec.SessionsRevived)
	}

	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		return err
	}
	if err := durable.AtomicWrite(outPath, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("baseline written to %s\n", outPath)
	return nil
}
