package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestFigure1(t *testing.T) {
	out, err := capture(t, func() error { return run("", 1) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LUT1", "MUX", "48", "register file"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigures2And3(t *testing.T) {
	out, err := capture(t, func() error { return run("", 2) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "single task case") || !strings.Contains(out, "MUX avail") {
		t.Fatalf("figure 2 incomplete:\n%s", out)
	}
	out, err = capture(t, func() error { return run("", 3) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "partial hyperreconfiguration steps") {
		t.Fatalf("figure 3 incomplete:\n%s", out)
	}
}

func TestFigureSVGOutput(t *testing.T) {
	dir := t.TempDir()
	svgOut = dir
	defer func() { svgOut = "" }()
	if _, err := capture(t, func() error { return run("", 3) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig3.svg")
	if err != nil {
		t.Fatalf("fig3.svg not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("fig3.svg is not an SVG document")
	}
	if _, err := capture(t, func() error { return run("", 2) }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir + "/fig2.svg"); err != nil {
		t.Fatalf("fig2.svg not written: %v", err)
	}
}

func TestCostsExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run("costs", 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hyperreconfiguration disabled  3840  100.0%",
		"single task optimal",
		"multi task GA",
		"paper reference",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("costs table missing %q:\n%s", want, out)
		}
	}
}

func TestPrivGlobalExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run("privglobal", 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 windows starting at steps [0 6]") {
		t.Fatalf("private-global windowing unexpected:\n%s", out)
	}
}

func TestGranExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run("gran", 0) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bit", "unit", "delta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("granularity table missing %q:\n%s", want, out)
		}
	}
}

func TestMTDAGExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run("mtdag", 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "task-parallel") || !strings.Contains(out, "joint DP") {
		t.Fatalf("mtdag table incomplete:\n%s", out)
	}
}

func TestAsyncExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run("async", 0) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bottleneck task") || !strings.Contains(out, "MUX") {
		t.Fatalf("async table incomplete:\n%s", out)
	}
}

func TestUnknownSelectors(t *testing.T) {
	if _, err := capture(t, func() error { return run("nope", 0) }); err == nil {
		t.Fatal("accepted unknown experiment")
	}
	if _, err := capture(t, func() error { return run("", 9) }); err == nil {
		t.Fatal("accepted unknown figure")
	}
	if _, err := capture(t, func() error { return run("", 0) }); err != nil {
		t.Fatal("empty selector should be a no-op")
	}
}
