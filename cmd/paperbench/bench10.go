// The -bench10 mode records the portfolio racing baseline
// (BENCH_PR10.json, EXPERIMENTS.md E22): the "portfolio" meta-solver
// against its own contenders run solo.
//
// Three scenarios are recorded:
//
//   - mixed: a heterogeneous workload (many seeds per family) solved by
//     each contender solo and by the portfolio as shipped — races while
//     its fresh dispatch table is cold, direct dispatch once a family's
//     winner is learned, exactly the amortized behavior a long-running
//     service sees.  Outside -bench10small the portfolio's total wall
//     must beat the worst single solver by at least 2x and stay within
//     10% of best-in-hindsight (the per-instance cheapest single solver
//     that matches the portfolio's cost and exactness guarantee), and
//     wherever the portfolio reports an exact result its cost must
//     equal the solo exact cost;
//   - exchange: the incumbent-exchange probe — the pruned exact DP run
//     once blind and once with the beam scout's bound published on the
//     shared incumbent board; the bound must cut the expanded states
//     without changing the cost.  The probe uses the sequential-hyper /
//     parallel-reconf upload model: under fully parallel uploads the
//     aligned-DP warm start is already optimal on these workloads and
//     the board has nothing to add, while mixed upload modes leave a
//     gap the scout's bound closes mid-solve;
//   - dispatch: a fresh win table warmed by races over several
//     instance families, then evaluated on repeat instances of the
//     same families — at least 80% must dispatch directly to the
//     family's race winner.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/portfolio"
	"repro/internal/solve"
	"repro/internal/workload"
)

// pfFamily is one instance family of the heterogeneous workload: a
// generator plus its configuration; per-instance seeds vary within the
// family.
type pfFamily struct {
	Name string          `json:"name"`
	Gen  string          `json:"gen"`
	Cfg  workload.Config `json:"config"`
}

// pfMixedFamilies is the -bench10 mixed workload: family sizes chosen
// so the exact DP lane can prove optimality and cancel the race (all
// under the automatic partition threshold — above it the partitioned
// lane's stitch certificate rarely collapses to a point, so no lane
// can cancel and the race honestly waits for every heuristic).
var pfMixedFamilies = []pfFamily{
	{Name: "phased-small", Gen: "phased", Cfg: workload.Config{Tasks: 2, Steps: 32, Switches: 12, MeanPhase: 8}},
	{Name: "phased", Gen: "phased", Cfg: workload.Config{Tasks: 3, Steps: 40, Switches: 12, MeanPhase: 10}},
	{Name: "dense", Gen: "dense", Cfg: workload.Config{Tasks: 3, Steps: 40, Switches: 16, MeanPhase: 10}},
}

// pfMixedFamiliesSmall shrinks the mixed workload for -bench10small
// (the CI smoke); the wall-clock floors are skipped there, the
// correctness gates are not.
var pfMixedFamiliesSmall = []pfFamily{
	{Name: "phased-small", Gen: "phased", Cfg: workload.Config{Tasks: 2, Steps: 32, Switches: 12, MeanPhase: 8}},
}

// pfDispatchFamilies adds a long blocked trace that crosses the
// automatic partition threshold: its races cannot cancel (see above),
// which is exactly where learned dispatch pays — repeat instances skip
// straight to the partitioned lane instead of waiting out the GA.
var pfDispatchFamilies = append(pfMixedFamilies[:len(pfMixedFamilies):len(pfMixedFamilies)],
	pfFamily{Name: "blocked-long", Gen: "blocked", Cfg: workload.Config{Tasks: 4, Steps: 96, Switches: 24, MeanPhase: 8}})

// pfDispatchFamiliesSmall replaces it under -bench10small.
var pfDispatchFamiliesSmall = append(pfMixedFamiliesSmall[:1:1],
	pfFamily{Name: "blocked-long", Gen: "blocked", Cfg: workload.Config{Tasks: 2, Steps: 80, Switches: 16, MeanPhase: 8}})

// pfSeqPar is the upload model of the exchange probe: hyperconfig
// uploads are task-sequential (their cost sums over tasks) while
// reconfiguration uploads stay task-parallel.  This keeps the joint DP
// coupled across tasks and is the regime where the aligned warm start
// is not already optimal, so the scout's published bound actually
// tightens the exact DP mid-solve.
var pfSeqPar = model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskParallel}

// pfExchangeWorkload is the incumbent-exchange probe instance: dense
// phases where the beam scout finds the optimum while the exact DP's
// own warm start overshoots it, so the published bound prunes a
// measurable share of the frontier.
var pfExchangeWorkload = workload.Config{Tasks: 4, Steps: 36, Switches: 12, MeanPhase: 4, Seed: 2}

// pfExchangeWorkloadSmall replaces it under -bench10small.
var pfExchangeWorkloadSmall = workload.Config{Tasks: 3, Steps: 32, Switches: 12, MeanPhase: 5, Seed: 1}

const (
	// pfWorstFactor is acceptance gate (a1): portfolio total wall at
	// least this many times better than the worst single solver.
	pfWorstFactor = 2.0
	// pfHindsightSlack is gate (a2): portfolio total wall within 10% of
	// best-in-hindsight.
	pfHindsightSlack = 1.10
	// pfDirectFloor is gate (c): share of repeat-family instances that
	// must dispatch directly to the eventual winner after warm-up.
	pfDirectFloor = 0.8
	// pfMixedSeeds instances are generated per family (seed = 1..N).
	// The count is deliberately large: the portfolio races only the
	// first few instances of a family before its dispatch table learns
	// the winner, so the measured total reflects the amortized cost of
	// the meta-solver over a real workload, not the one-off race tax.
	pfMixedSeeds      = 24
	pfMixedSeedsSmall = 3
	// pfWarmSeeds races warm the dispatch table per family before
	// pfEvalSeeds repeat instances are evaluated.
	pfWarmSeeds = 4
	pfEvalSeeds = 5
)

// pfRun is one solver's result on one instance.
type pfRun struct {
	Solver string  `json:"solver"`
	WallMS float64 `json:"wall_ms"`
	Cost   int64   `json:"cost"`
	Exact  bool    `json:"exact"`
}

// pfInstance is the head-to-head on one mixed-workload instance.
type pfInstance struct {
	Family    string `json:"family"`
	Seed      int64  `json:"seed"`
	Portfolio pfRun  `json:"portfolio"`
	Winner    string `json:"winner"`
	// Direct reports that the portfolio skipped the race and dispatched
	// straight to the learned winner.
	Direct  bool    `json:"direct,omitempty"`
	Singles []pfRun `json:"singles"`
	// Hindsight is the cheapest single solver whose cost AND exactness
	// match the portfolio's result — the solver a perfect oracle would
	// have dispatched to.
	Hindsight pfRun `json:"hindsight"`
}

// pfMixed is the mixed-workload scenario and gate (a).
type pfMixed struct {
	Families  []pfFamily   `json:"families"`
	Instances []pfInstance `json:"instances"`
	// Raced and Direct split the portfolio's instances by strategy:
	// full races while the dispatch table is cold vs direct dispatches
	// once a family's winner is learned.
	Raced  int `json:"raced"`
	Direct int `json:"direct"`
	// Totals across all instances, per strategy.
	PortfolioMS float64 `json:"portfolio_ms"`
	WorstMS     float64 `json:"worst_ms"`
	WorstSolver string  `json:"worst_solver"`
	HindsightMS float64 `json:"hindsight_ms"`
	// VsWorst is WorstMS / PortfolioMS (gate: >= 2 outside -small);
	// VsHindsight is PortfolioMS / HindsightMS (gate: <= 1.10).
	VsWorst     float64 `json:"vs_worst"`
	VsHindsight float64 `json:"vs_hindsight"`
	// ExactCostsAgree records that every exact portfolio result matched
	// the solo exact cost (always gated).
	ExactCostsAgree bool `json:"exact_costs_agree"`
}

// pfExchange is the incumbent-exchange probe and gate (b).
type pfExchange struct {
	Workload       workload.Config `json:"workload"`
	BeamBound      int64           `json:"beam_bound"`
	Cost           int64           `json:"cost"`
	StatesBlind    int64           `json:"states_blind"`
	StatesExchange int64           `json:"states_exchange"`
	Tightenings    int64           `json:"tightenings"`
	// Reduction is 1 - StatesExchange/StatesBlind (gate: > 0).
	Reduction float64 `json:"reduction"`
}

// pfFamilyDispatch is one family's dispatch outcome.
type pfFamilyDispatch struct {
	Family string `json:"family"`
	Winner string `json:"winner"`
	Evals  int    `json:"evals"`
	// Direct counts evaluation instances dispatched directly to Winner.
	Direct int `json:"direct"`
}

// pfDispatch is the learned-dispatch scenario and gate (c).
type pfDispatch struct {
	WarmRacesPerFamily int                `json:"warm_races_per_family"`
	Families           []pfFamilyDispatch `json:"families"`
	Evals              int                `json:"evals"`
	Direct             int                `json:"direct"`
	// DirectRate is Direct / Evals (gate: >= 0.8).
	DirectRate float64 `json:"direct_rate"`
}

// portfolioBaseline is the schema of BENCH_PR10.json.
type portfolioBaseline struct {
	Benchmark  string     `json:"benchmark"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Small      bool       `json:"small,omitempty"`
	Mixed      pfMixed    `json:"mixed"`
	Exchange   pfExchange `json:"exchange"`
	Dispatch   pfDispatch `json:"dispatch"`
}

// pfInstanceOf generates one family instance.
func pfInstanceOf(f pfFamily, seed int64) (*solve.Instance, error) {
	gen, ok := workload.Generators()[f.Gen]
	if !ok {
		return nil, fmt.Errorf("unknown generator %q", f.Gen)
	}
	cfg := f.Cfg
	cfg.Seed = seed
	mt, err := gen(cfg)
	if err != nil {
		return nil, err
	}
	return solve.NewMT(mt, parallel), nil
}

// pfMeasure times one solve.  A single measurement per solve is
// deliberate: the portfolio is measured stateful (its dispatch table
// warms as the workload progresses), so re-running an instance would
// change what is being measured.
func pfMeasure(run func() (*solve.Solution, error)) (*solve.Solution, float64, error) {
	start := time.Now()
	s, err := run()
	wall := float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		return nil, 0, err
	}
	return s, wall, nil
}

// pfMixedBench runs the heterogeneous head-to-head.  The portfolio is
// configured exactly as the product ships it — racing with incumbent
// exchange plus a learned dispatch table that starts empty — so the
// first few instances of each family pay the race tax and the rest
// dispatch straight to the learned winner.
func pfMixedBench(ctx context.Context, families []pfFamily, seeds int64, small bool) (pfMixed, error) {
	mixed := pfMixed{Families: families, ExactCostsAgree: true}
	cfg := portfolio.Defaults()
	cfg.Table = portfolio.NewTable()
	worstBySolver := map[string]float64{}
	for _, f := range families {
		for seed := int64(1); seed <= seeds; seed++ {
			inst, err := pfInstanceOf(f, seed)
			if err != nil {
				return mixed, err
			}
			psol, pwall, err := pfMeasure(func() (*solve.Solution, error) {
				return portfolio.Race(ctx, inst, solve.Options{}, cfg)
			})
			if err != nil {
				return mixed, fmt.Errorf("mixed %s seed %d portfolio: %w", f.Name, seed, err)
			}
			res := pfInstance{
				Family:    f.Name,
				Seed:      seed,
				Portfolio: pfRun{Solver: "portfolio", WallMS: pwall, Cost: int64(psol.Cost), Exact: psol.Exact},
				Direct:    len(psol.Contenders) == 1 && psol.Contenders[0].Direct,
			}
			if res.Direct {
				mixed.Direct++
			} else {
				mixed.Raced++
			}
			// The solo field: the contenders the race would line up,
			// each run alone through the same registry path.
			singles := []string{"exact", "beam", "ga"}
			for _, c := range psol.Contenders {
				if c.Won {
					res.Winner = c.Solver
				}
				if c.Solver == "exact-partitioned" {
					singles[0] = "exact-partitioned"
				}
			}
			hind := -1
			for _, name := range singles {
				ssol, swall, err := pfMeasure(func() (*solve.Solution, error) {
					return solve.Run(ctx, name, inst, solve.Options{})
				})
				if err != nil {
					return mixed, fmt.Errorf("mixed %s seed %d %s: %w", f.Name, seed, name, err)
				}
				run := pfRun{Solver: name, WallMS: swall, Cost: int64(ssol.Cost), Exact: ssol.Exact}
				res.Singles = append(res.Singles, run)
				worstBySolver[name] += swall
				if psol.Exact && ssol.Exact && run.Cost != res.Portfolio.Cost {
					mixed.ExactCostsAgree = false
				}
				if run.Cost == res.Portfolio.Cost && run.Exact == res.Portfolio.Exact {
					if hind < 0 || swall < res.Singles[hind].WallMS {
						hind = len(res.Singles) - 1
					}
				}
			}
			if hind < 0 {
				return mixed, fmt.Errorf("mixed %s seed %d: no single solver reproduces the portfolio result (cost=%d exact=%t)",
					f.Name, seed, res.Portfolio.Cost, res.Portfolio.Exact)
			}
			res.Hindsight = res.Singles[hind]
			mixed.Instances = append(mixed.Instances, res)
			mixed.PortfolioMS += pwall
			mixed.HindsightMS += res.Hindsight.WallMS
		}
	}
	for name, total := range worstBySolver {
		if total > mixed.WorstMS {
			mixed.WorstMS, mixed.WorstSolver = total, name
		}
	}
	if mixed.PortfolioMS > 0 {
		mixed.VsWorst = mixed.WorstMS / mixed.PortfolioMS
	}
	if mixed.HindsightMS > 0 {
		mixed.VsHindsight = mixed.PortfolioMS / mixed.HindsightMS
	}
	if !mixed.ExactCostsAgree {
		return mixed, fmt.Errorf("mixed: portfolio exact cost differs from the solo exact cost")
	}
	if !small {
		if mixed.VsWorst < pfWorstFactor {
			return mixed, fmt.Errorf("mixed: portfolio only %.2fx better than the worst single solver (%s), need %.0fx",
				mixed.VsWorst, mixed.WorstSolver, pfWorstFactor)
		}
		if mixed.VsHindsight > pfHindsightSlack {
			return mixed, fmt.Errorf("mixed: portfolio at %.2fx of best-in-hindsight, cap is %.2fx",
				mixed.VsHindsight, pfHindsightSlack)
		}
	}
	return mixed, nil
}

// pfExchangeBench runs the incumbent-exchange probe: the same exact DP
// solve, blind vs with the beam scout's bound pre-published on the
// shared board.  Publishing before the solve (rather than mid-race)
// makes the probe deterministic; the published value is exactly what
// the beam lane broadcasts in a live race.
func pfExchangeBench(ctx context.Context, cfg workload.Config) (pfExchange, error) {
	mt, err := workload.Dense(cfg)
	if err != nil {
		return pfExchange{}, err
	}
	inst := solve.NewMT(mt, pfSeqPar)

	beam, err := solve.Run(ctx, "beam", inst, solve.Options{Workers: 1})
	if err != nil {
		return pfExchange{}, fmt.Errorf("exchange beam scout: %w", err)
	}
	blind, err := mtswitch.SolveExact(ctx, mt, pfSeqPar, solve.Options{})
	if err != nil {
		return pfExchange{}, fmt.Errorf("exchange blind exact: %w", err)
	}
	board := solve.NewIncumbent()
	board.Publish(beam.Cost)
	coupled, err := mtswitch.SolveExact(solve.WithIncumbent(ctx, board), mt, pfSeqPar, solve.Options{})
	if err != nil {
		return pfExchange{}, fmt.Errorf("exchange coupled exact: %w", err)
	}

	ex := pfExchange{
		Workload:       cfg,
		BeamBound:      int64(beam.Cost),
		Cost:           int64(coupled.Cost),
		StatesBlind:    blind.Stats.StatesExpanded,
		StatesExchange: coupled.Stats.StatesExpanded,
		Tightenings:    coupled.Stats.IncumbentTightenings,
	}
	if ex.StatesBlind > 0 {
		ex.Reduction = 1 - float64(ex.StatesExchange)/float64(ex.StatesBlind)
	}
	if model.Cost(ex.Cost) != blind.Cost {
		return ex, fmt.Errorf("exchange: coupled cost %d != blind cost %d", ex.Cost, blind.Cost)
	}
	if ex.StatesExchange >= ex.StatesBlind {
		return ex, fmt.Errorf("exchange: bound did not reduce expanded states (%d blind, %d coupled)",
			ex.StatesBlind, ex.StatesExchange)
	}
	if ex.Tightenings == 0 {
		return ex, fmt.Errorf("exchange: exact DP never adopted the published bound")
	}
	return ex, nil
}

// pfDispatchBench warms a fresh win table with races, then checks that
// repeat instances of the same families dispatch directly to the
// family's winner.
func pfDispatchBench(ctx context.Context, families []pfFamily) (pfDispatch, error) {
	table := portfolio.NewTable()
	cfg := portfolio.Defaults()
	cfg.Table = table

	disp := pfDispatch{WarmRacesPerFamily: pfWarmSeeds}
	for _, f := range families {
		fd := pfFamilyDispatch{Family: f.Name}
		for seed := int64(100); seed < 100+pfWarmSeeds; seed++ {
			inst, err := pfInstanceOf(f, seed)
			if err != nil {
				return disp, err
			}
			sol, err := portfolio.Race(ctx, inst, solve.Options{}, cfg)
			if err != nil {
				return disp, fmt.Errorf("dispatch warm %s seed %d: %w", f.Name, seed, err)
			}
			// A warm run that already dispatched directly (the family's
			// bucket was learned from an earlier family) names the same
			// winner a race would have: the direct target IS the learned
			// winner.
			for _, c := range sol.Contenders {
				if c.Won {
					fd.Winner = c.Solver
				}
			}
		}
		for seed := int64(200); seed < 200+pfEvalSeeds; seed++ {
			inst, err := pfInstanceOf(f, seed)
			if err != nil {
				return disp, err
			}
			sol, err := portfolio.Race(ctx, inst, solve.Options{}, cfg)
			if err != nil {
				return disp, fmt.Errorf("dispatch eval %s seed %d: %w", f.Name, seed, err)
			}
			fd.Evals++
			if len(sol.Contenders) == 1 && sol.Contenders[0].Direct && sol.Contenders[0].Solver == fd.Winner {
				fd.Direct++
			}
		}
		disp.Families = append(disp.Families, fd)
		disp.Evals += fd.Evals
		disp.Direct += fd.Direct
	}
	if disp.Evals > 0 {
		disp.DirectRate = float64(disp.Direct) / float64(disp.Evals)
	}
	if disp.DirectRate < pfDirectFloor {
		return disp, fmt.Errorf("dispatch: only %.0f%% of repeat instances dispatched directly (floor %.0f%%)",
			100*disp.DirectRate, 100*pfDirectFloor)
	}
	return disp, nil
}

// portfolioBench runs all three scenarios and writes BENCH_PR10.json.
func portfolioBench(outPath string, small bool) error {
	ctx := context.Background()
	mixedFamilies, dispatchFamilies := pfMixedFamilies, pfDispatchFamilies
	exchangeCfg := pfExchangeWorkload
	seeds := int64(pfMixedSeeds)
	if small {
		mixedFamilies, dispatchFamilies = pfMixedFamiliesSmall, pfDispatchFamiliesSmall
		exchangeCfg = pfExchangeWorkloadSmall
		seeds = pfMixedSeedsSmall
	}

	mixed, err := pfMixedBench(ctx, mixedFamilies, seeds, small)
	if err != nil {
		return err
	}
	fmt.Printf("mixed       portfolio %.1fms over %d instances (%d raced, %d direct) | worst single %s %.1fms (%.1fx) | hindsight %.1fms (%.2fx)\n",
		mixed.PortfolioMS, mixed.Raced+mixed.Direct, mixed.Raced, mixed.Direct,
		mixed.WorstSolver, mixed.WorstMS, mixed.VsWorst, mixed.HindsightMS, mixed.VsHindsight)

	exchange, err := pfExchangeBench(ctx, exchangeCfg)
	if err != nil {
		return err
	}
	fmt.Printf("exchange    blind %d states | coupled %d states (-%.0f%%, %d tightenings) | cost %d unchanged\n",
		exchange.StatesBlind, exchange.StatesExchange, 100*exchange.Reduction, exchange.Tightenings, exchange.Cost)

	dispatch, err := pfDispatchBench(ctx, dispatchFamilies)
	if err != nil {
		return err
	}
	fmt.Printf("dispatch    %d/%d repeat instances dispatched directly (%.0f%%)\n",
		dispatch.Direct, dispatch.Evals, 100*dispatch.DirectRate)

	out := portfolioBaseline{
		Benchmark:  "portfolio racing vs solo contenders (E22)",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Small:      small,
		Mixed:      mixed,
		Exchange:   exchange,
		Dispatch:   dispatch,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("portfolio baseline written to %s\n", outPath)
	return nil
}
