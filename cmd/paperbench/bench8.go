// The -bench8 mode records the partition-and-conquer baseline
// (BENCH_PR8.json, EXPERIMENTS.md E20): the monolithic pruned exact
// engine against the partitioned solver (internal/partition) on
// block-structured workloads.
//
// Three scenarios are recorded:
//
//   - cut-free: a blocked workload whose working sets are disjoint
//     between blocks; the partitioned cost must equal the monolithic
//     exact cost and (outside -bench8small) the partitioned solve must
//     be at least 5x faster, with the cost also agreeing across
//     Workers {1,2,8} x Partitions {2,4};
//   - budget: a larger blocked workload under a MaxFrontierBytes
//     budget the monolithic frontier cannot fit — the monolithic run
//     degrades to a beam while the partitioned windows each stay
//     within the budget and recover the unbudgeted optimum;
//   - cut: a blocked workload with a nonzero cut width; the optimum
//     must lie inside the certified interval
//     [cost − StitchBound, cost].
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/partition"
	"repro/internal/solve"
	"repro/internal/workload"
)

// blockedWorkload is the cut-free headline instance: aligned blocks
// with block-disjoint working sets, so the step-axis decomposition is
// exact and every window is small.  BenchmarkPartitionedSolve in
// bench_test.go measures the same configuration.
var blockedWorkload = workload.Config{Tasks: 4, Steps: 64, Switches: 24, MeanPhase: 8, Seed: 2}

// blockedSmallWorkload replaces blockedWorkload under -bench8small
// (the CI smoke): the correctness gates still run, the 5x speedup
// floor does not.
var blockedSmallWorkload = workload.Config{Tasks: 2, Steps: 64, Switches: 16, MeanPhase: 4, Seed: 2}

// blockedBudgetWorkload is the degradation scenario: long enough that
// the monolithic frontier blows the byte budget while each window's
// frontier stays far below it.
var blockedBudgetWorkload = workload.Config{Tasks: 4, Steps: 96, Switches: 36, MeanPhase: 8, Seed: 2}

// blockedCutWorkload keeps a nonzero cut (CutWidth always-active
// shared columns) so the certificate is exercised with a positive
// StitchBound.
var blockedCutWorkload = workload.Config{Tasks: 2, Steps: 36, Switches: 12, MeanPhase: 6, CutWidth: 2, Seed: 9}

// partitionBudgetBytes is the MaxFrontierBytes budget of the
// degradation scenario.
const partitionBudgetBytes = 256 << 10

// partitionSpeedupFloor is the acceptance criterion of PR8: the
// partitioned solve must beat the monolithic pruned engine by at
// least this factor on the cut-free workload.
const partitionSpeedupFloor = 5.0

// partitionRun is one solver's measurement on the cut-free workload.
type partitionRun struct {
	Solver      string  `json:"solver"` // "exact" or "exact-partitioned"
	Workers     int     `json:"workers"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Cost        int64   `json:"cost"`
	Partitions  int64   `json:"partitions,omitempty"`
	CutColumns  int64   `json:"cut_columns"`
	StitchBound int64   `json:"stitch_bound"`
}

// partitionComparison is the cut-free head-to-head.
type partitionComparison struct {
	Workload    string          `json:"workload"`
	Config      workload.Config `json:"config"`
	Monolithic  partitionRun    `json:"monolithic"`
	Partitioned partitionRun    `json:"partitioned"`
	// Speedup is monolithic ns/op ÷ partitioned ns/op.
	Speedup float64 `json:"speedup"`
	// WorkersAgree records that the partitioned cost matched the
	// monolithic exact cost across Workers {1,2,8} x Partitions {2,4}.
	WorkersAgree bool `json:"workers_agree"`
}

// partitionBudgetScenario is the degradation scenario: under the same
// MaxFrontierBytes the monolithic engine degrades to a beam while the
// partitioned windows solve exactly.
type partitionBudgetScenario struct {
	Workload         string          `json:"workload"`
	Config           workload.Config `json:"config"`
	MaxFrontierBytes int64           `json:"max_frontier_bytes"`
	// OptimalCost is the unbudgeted monolithic exact optimum both
	// budgeted runs are judged against.
	OptimalCost int64     `json:"optimal_cost"`
	Monolithic  budgetRun `json:"monolithic"`
	Partitioned budgetRun `json:"partitioned"`
}

// partitionCutScenario records the certificate on a non-empty cut.
type partitionCutScenario struct {
	Workload    string          `json:"workload"`
	Config      workload.Config `json:"config"`
	Cost        int64           `json:"cost"`
	OptimalCost int64           `json:"optimal_cost"`
	Partitions  int64           `json:"partitions"`
	CutColumns  int64           `json:"cut_columns"`
	StitchBound int64           `json:"stitch_bound"`
	// BoundContainsOptimum asserts OptimalCost ∈ [Cost − StitchBound,
	// Cost]; -bench8 fails if it is false.
	BoundContainsOptimum bool `json:"bound_contains_optimum"`
}

// partitionBaseline is the schema of BENCH_PR8.json.
type partitionBaseline struct {
	Benchmark  string               `json:"benchmark"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Small      bool                 `json:"small,omitempty"`
	CutFree    partitionComparison  `json:"cut_free"`
	Cut        partitionCutScenario `json:"cut"`
	// Budget is omitted under -bench8small (the smoke keeps CI fast).
	Budget *partitionBudgetScenario `json:"budget,omitempty"`
}

// measurePartitionRun benchmarks one solve closure and collects the
// partition statistics from a separate untimed run.
func measurePartitionRun(solver string, workers int, stats func() (*mtswitch.Solution, error), run func() (model.Cost, error)) (partitionRun, error) {
	sol, err := stats()
	if err != nil {
		return partitionRun{}, err
	}
	res, cost, err := measureEngine(run)
	if err != nil {
		return partitionRun{}, err
	}
	return partitionRun{
		Solver:      solver,
		Workers:     workers,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Cost:        int64(cost),
		Partitions:  sol.Stats.Partitions,
		CutColumns:  sol.Stats.CutColumns,
		StitchBound: sol.Stats.StitchBound,
	}, nil
}

// partitionBench runs the partition-and-conquer comparison and writes
// BENCH_PR8.json.  Under small the workload shrinks and the speedup
// floor and budget scenario are skipped — correctness gates (equal
// cut-free cost, workers agreement, certificate containment) always
// run.
func partitionBench(outPath string, small bool) error {
	ctx := context.Background()
	cfg := blockedWorkload
	if small {
		cfg = blockedSmallWorkload
	}
	ins, err := workload.Blocked(cfg)
	if err != nil {
		return err
	}

	mono, err := measurePartitionRun("exact", 0,
		func() (*mtswitch.Solution, error) { return mtswitch.SolveExact(ctx, ins, parallel, solve.Options{}) },
		func() (model.Cost, error) {
			sol, err := mtswitch.SolveExact(ctx, ins, parallel, solve.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		})
	if err != nil {
		return fmt.Errorf("cut-free monolithic: %w", err)
	}
	part, err := measurePartitionRun("exact-partitioned", 0,
		func() (*mtswitch.Solution, error) { return partition.Solve(ctx, ins, parallel, solve.Options{}) },
		func() (model.Cost, error) {
			sol, err := partition.Solve(ctx, ins, parallel, solve.Options{})
			if err != nil {
				return 0, err
			}
			return sol.Cost, nil
		})
	if err != nil {
		return fmt.Errorf("cut-free partitioned: %w", err)
	}
	if part.Cost != mono.Cost {
		return fmt.Errorf("cut-free: partitioned cost %d != monolithic exact cost %d", part.Cost, mono.Cost)
	}
	if part.CutColumns != 0 {
		return fmt.Errorf("cut-free: planner cut %d columns, want 0", part.CutColumns)
	}
	cmp := partitionComparison{
		Workload:     "blocked cut-free",
		Config:       cfg,
		Monolithic:   mono,
		Partitioned:  part,
		WorkersAgree: true,
	}
	if part.NsPerOp > 0 {
		cmp.Speedup = mono.NsPerOp / part.NsPerOp
	}
	for _, workers := range []int{1, 2, 8} {
		for _, parts := range []int{2, 4} {
			sol, err := partition.Solve(ctx, ins, parallel, solve.Options{Workers: workers, Partitions: parts})
			if err != nil {
				return fmt.Errorf("cut-free workers=%d partitions=%d: %w", workers, parts, err)
			}
			if int64(sol.Cost) != mono.Cost {
				cmp.WorkersAgree = false
			}
		}
	}
	if !cmp.WorkersAgree {
		return fmt.Errorf("cut-free: partitioned cost differs across workers/partitions")
	}
	if !small && cmp.Speedup < partitionSpeedupFloor {
		return fmt.Errorf("cut-free: speedup %.2fx below the required %.0fx", cmp.Speedup, partitionSpeedupFloor)
	}
	fmt.Printf("cut-free    monolithic %12.0f ns/op | partitioned %12.0f ns/op (%d windows) | speedup=%.2fx cost=%d\n",
		mono.NsPerOp, part.NsPerOp, part.Partitions, cmp.Speedup, part.Cost)

	// Certificate scenario: a positive cut, optimum inside the interval.
	cutIns, err := workload.Blocked(blockedCutWorkload)
	if err != nil {
		return err
	}
	cutSol, err := partition.Solve(ctx, cutIns, parallel, solve.Options{Partitions: 3})
	if err != nil {
		return fmt.Errorf("cut partitioned: %w", err)
	}
	cutOpt, err := mtswitch.SolveExact(ctx, cutIns, parallel, solve.Options{})
	if err != nil {
		return fmt.Errorf("cut optimum: %w", err)
	}
	cut := partitionCutScenario{
		Workload:    "blocked cut-width-2",
		Config:      blockedCutWorkload,
		Cost:        int64(cutSol.Cost),
		OptimalCost: int64(cutOpt.Cost),
		Partitions:  cutSol.Stats.Partitions,
		CutColumns:  cutSol.Stats.CutColumns,
		StitchBound: cutSol.Stats.StitchBound,
	}
	cut.BoundContainsOptimum = cut.OptimalCost <= cut.Cost && cut.OptimalCost >= cut.Cost-cut.StitchBound
	if cut.CutColumns == 0 {
		return fmt.Errorf("cut scenario: expected a positive column cut")
	}
	if !cut.BoundContainsOptimum {
		return fmt.Errorf("cut scenario: optimum %d outside [%d, %d]",
			cut.OptimalCost, cut.Cost-cut.StitchBound, cut.Cost)
	}
	fmt.Printf("cut         cost=%d optimum=%d stitch-bound=%d cut-columns=%d (certified interval holds)\n",
		cut.Cost, cut.OptimalCost, cut.StitchBound, cut.CutColumns)

	out := partitionBaseline{
		Benchmark:  "monolithic pruned exact vs partition-and-conquer (E20)",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Small:      small,
		CutFree:    cmp,
		Cut:        cut,
	}

	if !small {
		budget, err := partitionBudget(ctx)
		if err != nil {
			return err
		}
		out.Budget = budget
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("partition baseline written to %s\n", outPath)
	return nil
}

// partitionBudget runs the degradation scenario: the same byte budget
// beam-degrades the monolithic engine but leaves every partitioned
// window exact.
func partitionBudget(ctx context.Context) (*partitionBudgetScenario, error) {
	ins, err := workload.Blocked(blockedBudgetWorkload)
	if err != nil {
		return nil, err
	}
	budgeted := solve.Options{MaxFrontierBytes: partitionBudgetBytes}
	monoSol, err := mtswitch.SolveExact(ctx, ins, parallel, budgeted)
	if err != nil {
		return nil, fmt.Errorf("budget monolithic: %w", err)
	}
	partSol, err := partition.Solve(ctx, ins, parallel, budgeted)
	if err != nil {
		return nil, fmt.Errorf("budget partitioned: %w", err)
	}
	optSol, err := mtswitch.SolveExact(ctx, ins, parallel, solve.Options{})
	if err != nil {
		return nil, fmt.Errorf("budget optimum: %w", err)
	}
	sc := &partitionBudgetScenario{
		Workload:         "blocked cut-free large",
		Config:           blockedBudgetWorkload,
		MaxFrontierBytes: partitionBudgetBytes,
		OptimalCost:      int64(optSol.Cost),
		Monolithic: budgetRun{
			PruningEnabled: true,
			Cost:           int64(monoSol.Cost),
			Degraded:       monoSol.Stats.Degraded,
			Truncated:      monoSol.Stats.Truncated,
			BudgetDropped:  monoSol.Stats.BudgetDropped,
		},
		Partitioned: budgetRun{
			PruningEnabled: true,
			Cost:           int64(partSol.Cost),
			Degraded:       partSol.Stats.Degraded,
			Truncated:      partSol.Stats.Truncated,
			BudgetDropped:  partSol.Stats.BudgetDropped,
		},
	}
	if !sc.Monolithic.Degraded {
		return nil, fmt.Errorf("budget scenario: monolithic run did not degrade under %d bytes", int64(partitionBudgetBytes))
	}
	if sc.Partitioned.Degraded || sc.Partitioned.Truncated {
		return nil, fmt.Errorf("budget scenario: partitioned run degraded under %d bytes", int64(partitionBudgetBytes))
	}
	if sc.Partitioned.Cost != sc.OptimalCost {
		return nil, fmt.Errorf("budget scenario: partitioned cost %d != unbudgeted optimum %d", sc.Partitioned.Cost, sc.OptimalCost)
	}
	fmt.Printf("budget %d KiB: monolithic degraded (cost %d, dropped %d) | partitioned exact (cost %d = optimum)\n",
		int64(partitionBudgetBytes)>>10, sc.Monolithic.Cost, sc.Monolithic.BudgetDropped, sc.Partitioned.Cost)
	return sc, nil
}
