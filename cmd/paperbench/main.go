// Command paperbench regenerates every table and figure of the paper's
// evaluation (Section 6) plus the ablations catalogued in DESIGN.md.
// All optimizers resolve by name through the solve registry.
//
// Usage:
//
//	paperbench -exp all        # everything
//	paperbench -fig 1          # architecture (Figure 1)
//	paperbench -fig 2          # context sequences + hyper steps (Figure 2)
//	paperbench -fig 3          # partial hyperreconfiguration map (Figure 3)
//	paperbench -exp costs      # the headline cost table (E2)
//	paperbench -exp modes      # sync/upload-mode sweep (E5)
//	paperbench -exp solvers    # solver-quality ablation (E6)
//	paperbench -exp changeover # changeover-cost variant (E7)
//	paperbench -exp apps       # all bundled applications (E8)
//	paperbench -exp gran       # requirement-granularity ablation (E9)
//	paperbench -exp async      # asynchronous vs synchronized (E10)
//	paperbench -exp privglobal # private global resources (E11)
//	paperbench -exp mtdag      # the Multi Task DAG cost model (E13)
//	paperbench -exp mesh       # the reconfigurable-mesh machine (E15)
//	paperbench -bench          # frontier-engine bench baseline (E14)
//	paperbench -bench5         # pruned-search bench baseline (E17)
//	paperbench -bench6         # incremental-solve bench baseline (E18)
//	paperbench -bench8         # partition-and-conquer bench baseline (E20)
//	paperbench -bench9         # durability & crash-recovery baseline (E21)
//	paperbench -bench10        # portfolio racing baseline (E22)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/report"
	"repro/internal/rmesh"
	"repro/internal/shyra"
	"repro/internal/solve"
)

var parallel = model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}

// svgOut, when non-empty, makes the figure generators additionally
// write SVG renderings into this directory.
var svgOut string

// writeSVG stores an SVG document when -svgdir is set.
func writeSVG(name, svg string) error {
	if svgOut == "" {
		return nil
	}
	path := filepath.Join(svgOut, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("SVG written to %s\n", path)
	return nil
}

func main() {
	var (
		exp        = flag.String("exp", "", "experiment: costs, modes, solvers, changeover, apps, gran, async, privglobal, mtdag, mesh, all")
		fig        = flag.Int("fig", 0, "figure to regenerate: 1, 2 or 3")
		svgDir     = flag.String("svgdir", "", "also write Figure 2/3 as SVG files into this directory")
		bench      = flag.Bool("bench", false, "measure the MT-Switch frontier engines and write a JSON baseline (E14)")
		benchOut   = flag.String("benchout", "BENCH_PR3.json", "output path for the -bench baseline")
		bench5     = flag.Bool("bench5", false, "measure pruning vs the unpruned packed engine and write a JSON baseline (E17)")
		bench5Out  = flag.String("bench5out", "BENCH_PR5.json", "output path for the -bench5 baseline")
		bench6     = flag.Bool("bench6", false, "measure incremental suffix re-solve vs from-scratch and write a JSON baseline (E18)")
		bench6Out  = flag.String("bench6out", "BENCH_PR6.json", "output path for the -bench6 baseline")
		bench8     = flag.Bool("bench8", false, "measure the partitioned solver vs the monolithic exact engine and write a JSON baseline (E20)")
		bench8Out  = flag.String("bench8out", "BENCH_PR8.json", "output path for the -bench8 baseline")
		bench8Sm   = flag.Bool("bench8small", false, "with -bench8: shrink the workload and skip the speedup floor and budget scenario (CI smoke)")
		bench9     = flag.Bool("bench9", false, "measure WAL durability overhead and crash recovery and write a JSON baseline (E21)")
		bench9Out  = flag.String("bench9out", "BENCH_PR9.json", "output path for the -bench9 baseline")
		bench9Sm   = flag.Bool("bench9small", false, "with -bench9: shrink the workload and time only the always policy next to in-memory (CI smoke)")
		bench10    = flag.Bool("bench10", false, "measure the portfolio racing meta-solver vs its solo contenders and write a JSON baseline (E22)")
		bench10Out = flag.String("bench10out", "BENCH_PR10.json", "output path for the -bench10 baseline")
		bench10Sm  = flag.Bool("bench10small", false, "with -bench10: shrink the workload and skip the wall-clock floors (CI smoke)")
	)
	flag.Parse()

	ranBench := false
	if *bench {
		if err := engineBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		ranBench = true
	}
	if *bench5 {
		if err := pruneBench(*bench5Out); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		ranBench = true
	}
	if *bench6 {
		if err := incrBench(*bench6Out); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		ranBench = true
	}
	if *bench8 {
		if err := partitionBench(*bench8Out, *bench8Sm); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		ranBench = true
	}
	if *bench9 {
		if err := durableBench(*bench9Out, *bench9Sm); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		ranBench = true
	}
	if *bench10 {
		if err := portfolioBench(*bench10Out, *bench10Sm); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		ranBench = true
	}
	if ranBench {
		return
	}
	if *exp == "" && *fig == 0 {
		*exp = "all"
	}
	svgOut = *svgDir
	if err := run(*exp, *fig); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(exp string, fig int) error {
	switch fig {
	case 0:
	case 1:
		return figure1()
	case 2:
		return figure2()
	case 3:
		return figure3()
	default:
		return fmt.Errorf("unknown figure %d", fig)
	}
	switch exp {
	case "":
		return nil
	case "costs":
		return costs()
	case "modes":
		return modes()
	case "solvers":
		return solvers()
	case "changeover":
		return changeover()
	case "apps":
		return appsSweep()
	case "gran":
		return granularities()
	case "async":
		return asyncVsSync()
	case "privglobal":
		return privGlobal()
	case "mtdag":
		return mtDAG()
	case "mesh":
		return mesh()
	case "all":
		for _, f := range []func() error{figure1, costs, figure2, figure3, modes, solvers, changeover, appsSweep, granularities, asyncVsSync, privGlobal, mtDAG, mesh} {
			if err := f(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// figure1 prints the SHyRA architecture — the content of the paper's
// Figure 1 plus the reconfiguration bit budget.
func figure1() error {
	fmt.Println("=== Figure 1: the SHyRA architecture ===")
	fmt.Println(`
           +---------+      +------+      +---------+
  regs --->|  10:6   |----->| LUT1 |----->|  2:10   |---> regs
  r0..r9   |   MUX   |  3   | 3->1 |  1   |  DeMUX  |   r0..r9
           |         |----->| LUT2 |----->|         |
           +---------+  3   | 3->1 |  1   +---------+
                            +------+
        register file: 10 x 1 bit, edge triggered`)
	fmt.Println("reconfiguration bit budget (the 48 switches of the MT-Switch analysis):")
	rows := make([][]string, 0, 4)
	for _, u := range shyra.Units() {
		s, e := u.BitRange()
		rows = append(rows, []string{u.String(), fmt.Sprintf("%d", u.Bits()), fmt.Sprintf("%d..%d", s, e-1)})
	}
	rows = append(rows, []string{"total", fmt.Sprintf("%d", shyra.ConfigBits), ""})
	fmt.Print(report.Table([]string{"unit / task", "bits (l_j)", "global bit range"}, rows))
	return nil
}

func analyze() (*core.Analysis, error) {
	return core.RunPaperExperiment(context.Background(), core.Options{
		Solve: solve.Options{Pop: 120, Generations: 400, Seed: 1},
	})
}

// costs prints the headline comparison (E2) next to the paper's values.
func costs() error {
	fmt.Println("=== E2: total (hyper)reconfiguration costs, 4-bit counter 0→10 ===")
	a, err := analyze()
	if err != nil {
		return err
	}
	best := a.Best()
	fmt.Printf("trace: %s, n=%d reconfiguration steps (paper: n=110)\n\n", a.Trace.Program, a.Trace.Len())
	headers := []string{"schedule", "cost", "% of disabled", "hyper steps"}
	rows := [][]string{
		report.CostRow("hyperreconfiguration disabled", a.Disabled, a.Disabled, 0),
		report.CostRow("single task optimal (m=1, DP)", a.SingleOpt.Cost, a.Disabled, len(a.SingleOpt.Seg.Starts)),
		report.CostRow("multi task GA (m=4)", a.MultiGA.Cost, a.Disabled, core.HyperCount(a.MultiGA.MTSched)),
		report.CostRow("multi task aligned DP", a.MultiAligned.Cost, a.Disabled, core.HyperCount(a.MultiAligned.MTSched)),
	}
	if a.MultiBeam != nil {
		rows = append(rows, report.CostRow("multi task beam DP", a.MultiBeam.Cost, a.Disabled, core.HyperCount(a.MultiBeam.MTSched)))
	}
	rows = append(rows,
		report.CostRow("multi task best", best.Cost, a.Disabled, core.HyperCount(best.MTSched)),
		report.CostRow("multi task lower bound", a.Bound, a.Disabled, 0),
	)
	fmt.Print(report.Table(headers, rows))
	fmt.Println("\npaper reference (n=110 trace): disabled 5280 (100%), single 3761 (71.2%, 30 hyper steps), multi GA 2813 (53.3%, 50 partial hyper steps)")
	fmt.Println("ordering multi < single < disabled reproduces; see EXPERIMENTS.md for the factor discussion")
	return nil
}

// analyzeFigures produces the analysis the figures are drawn from: the
// data-dependent counter at delta granularity, where requirement
// diversity makes the schedule structure visible (the straight-line
// counter's optimal schedules hyperreconfigure only once, which renders
// as an empty chart).
func analyzeFigures() (*core.Analysis, error) {
	tr, err := core.AppTrace("counterdd")
	if err != nil {
		return nil, err
	}
	return core.AnalyzeTrace(context.Background(), tr, core.Options{
		Granularity: shyra.GranularityDelta,
		Solve:       solve.Options{Pop: 120, Generations: 400, Seed: 1},
	})
}

// figure2 renders the context sequences and hyperreconfiguration steps.
func figure2() error {
	fmt.Println("=== Figure 2: hypercontexts and hyperreconfiguration time steps ===")
	fmt.Println("(data-dependent 4-bit counter 0→10, delta granularity)")
	a, err := analyzeFigures()
	if err != nil {
		return err
	}
	fmt.Printf("single task case (m=1): %d hyperreconfigurations, cost %d (%.1f%% of disabled)\n",
		len(a.SingleOpt.Seg.Starts), a.SingleOpt.Cost, a.Percent(a.SingleOpt.Cost))
	fmt.Println("  " + report.SegmentsLine(a.Single.Len(), a.SingleOpt.Seg.Starts))
	fmt.Println()
	fmt.Printf("multiple task case (m=4): cost %d (%.1f%% of disabled)\n", a.Best().Cost, a.Percent(a.Best().Cost))
	fmt.Println("(used = requirement size, avail = hypercontext size, base-36 digits)")
	cm, err := report.ContextMap(a.MT, a.Best().MTSched)
	if err != nil {
		return err
	}
	fmt.Print(cm)
	svg, err := report.SVGContextMap(a.MT, a.Best().MTSched)
	if err != nil {
		return err
	}
	return writeSVG("fig2.svg", svg)
}

// figure3 renders which tasks partially hyperreconfigure at each step.
func figure3() error {
	fmt.Println("=== Figure 3: partial hyperreconfiguration operations per task ===")
	fmt.Println("(data-dependent 4-bit counter 0→10, delta granularity)")
	a, err := analyzeFigures()
	if err != nil {
		return err
	}
	names := make([]string, a.MT.NumTasks())
	for j, t := range a.MT.Tasks {
		names[j] = t.Name
	}
	fmt.Printf("best multi-task schedule, %d partial hyperreconfiguration steps (# = hyper, . = no-hyper):\n",
		core.HyperCount(a.Best().MTSched))
	fmt.Print(report.HyperMap(names, a.Best().MTSched))
	svg, err := report.SVGHyperMap(names, a.Best().MTSched)
	if err != nil {
		return err
	}
	return writeSVG("fig3.svg", svg)
}

// modes sweeps the upload modes (E5).
func modes() error {
	fmt.Println("=== E5: upload-mode sweep (4-bit counter trace, m=4) ===")
	ctx := context.Background()
	tr, err := core.CounterTrace(0, 10)
	if err != nil {
		return err
	}
	ins, err := tr.MTInstance(shyra.GranularityBit)
	if err != nil {
		return err
	}
	headers := []string{"hyper upload", "reconf upload", "GA cost", "aligned cost", "lower bound"}
	var rows [][]string
	for _, hu := range []model.UploadMode{model.TaskParallel, model.TaskSequential} {
		for _, ru := range []model.UploadMode{model.TaskParallel, model.TaskSequential} {
			opt := model.CostOptions{HyperUpload: hu, ReconfUpload: ru}
			mtInst := solve.NewMT(ins, opt)
			res, err := solve.Run(ctx, "ga", mtInst, solve.Options{Pop: 80, Generations: 200, Seed: 1})
			if err != nil {
				return err
			}
			al, err := solve.Run(ctx, "aligned", mtInst, solve.Options{})
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				hu.String(), ru.String(),
				fmt.Sprintf("%d", res.Cost),
				fmt.Sprintf("%d", al.Cost),
				fmt.Sprintf("%d", mtswitch.LowerBound(ins, opt)),
			})
		}
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Println("\ntask-parallel uploads never cost more than task-sequential ones (max ≤ sum per step)")
	return nil
}

// solvers compares solver quality across the bundled apps (E6), every
// optimizer resolved by name through the solve registry.
func solvers() error {
	fmt.Println("=== E6: solver quality (m=4, task-parallel uploads) ===")
	ctx := context.Background()
	headers := []string{"app", "n", "disabled", "aligned", "beam", "GA", "SA", "bound"}
	var rows [][]string
	for _, name := range core.AppNames() {
		tr, err := core.AppTrace(name)
		if err != nil {
			return err
		}
		ins, err := tr.MTInstance(shyra.GranularityBit)
		if err != nil {
			return err
		}
		mtInst := solve.NewMT(ins, parallel)
		al, err := solve.Run(ctx, "aligned", mtInst, solve.Options{})
		if err != nil {
			return err
		}
		beam, err := solve.Run(ctx, "beam", mtInst, solve.Options{MaxStates: 2000, MaxCandidates: 4})
		if err != nil {
			return err
		}
		res, err := solve.Run(ctx, "ga", mtInst, solve.Options{Pop: 80, Generations: 200, Seed: 1})
		if err != nil {
			return err
		}
		sa, err := solve.Run(ctx, "anneal", mtInst, solve.Options{Iterations: 20000, Seed: 1})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			name, fmt.Sprintf("%d", ins.Steps()),
			fmt.Sprintf("%d", ins.DisabledCost()),
			fmt.Sprintf("%d", al.Cost),
			fmt.Sprintf("%d", beam.Cost),
			fmt.Sprintf("%d", res.Cost),
			fmt.Sprintf("%d", sa.Cost),
			fmt.Sprintf("%d", mtswitch.LowerBound(ins, parallel)),
		})
	}
	fmt.Print(report.Table(headers, rows))
	return nil
}

// changeover compares the plain and changeover-cost variants (E7).
func changeover() error {
	fmt.Println("=== E7: changeover-cost variant (m=1 view) ===")
	ctx := context.Background()
	headers := []string{"app", "plain DP", "changeover DP", "hyper steps plain", "hyper steps changeover"}
	var rows [][]string
	for _, name := range core.AppNames() {
		tr, err := core.AppTrace(name)
		if err != nil {
			return err
		}
		ins, err := tr.SingleInstance(shyra.GranularityBit)
		if err != nil {
			return err
		}
		single := solve.NewSwitch(ins)
		plain, err := solve.Run(ctx, "exact", single, solve.Options{})
		if err != nil {
			return err
		}
		ch, err := solve.Run(ctx, "changeover", single, solve.Options{})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", plain.Cost),
			fmt.Sprintf("%d", ch.Cost),
			fmt.Sprintf("%d", len(plain.Seg.Starts)),
			fmt.Sprintf("%d", len(ch.Seg.Starts)),
		})
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Println("\nchangeover costs make hyperreconfiguration cheaper when consecutive hypercontexts overlap,")
	fmt.Println("so changeover schedules use at least as many hyperreconfigurations")
	return nil
}

// granularities compares the three requirement-extraction notions (E9):
// bit (live bits), unit (whole used units) and delta (changed bits).
func granularities() error {
	fmt.Println("=== E9: requirement-granularity ablation (counter trace) ===")
	tr, err := core.CounterTrace(0, 10)
	if err != nil {
		return err
	}
	headers := []string{"granularity", "disabled", "single opt", "single %", "multi best", "multi %", "single hypers", "multi hyper steps"}
	var rows [][]string
	for _, g := range []shyra.Granularity{shyra.GranularityBit, shyra.GranularityUnit, shyra.GranularityDelta} {
		a, err := core.AnalyzeTrace(context.Background(), tr, core.Options{
			Granularity: g,
			Solve:       solve.Options{Pop: 100, Generations: 300, Seed: 1},
		})
		if err != nil {
			return err
		}
		best := a.Best()
		rows = append(rows, []string{
			g.String(),
			fmt.Sprintf("%d", a.Disabled),
			fmt.Sprintf("%d", a.SingleOpt.Cost),
			fmt.Sprintf("%.1f%%", a.Percent(a.SingleOpt.Cost)),
			fmt.Sprintf("%d", best.Cost),
			fmt.Sprintf("%.1f%%", a.Percent(best.Cost)),
			fmt.Sprintf("%d", len(a.SingleOpt.Seg.Starts)),
			fmt.Sprintf("%d", core.HyperCount(best.MTSched)),
		})
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Println("\ndelta granularity (only changed bits must be uploaded) yields the richest schedules;")
	fmt.Println("the ordering multi < single < disabled holds under every granularity")
	return nil
}

// asyncVsSync compares the non-synchronized General-MT window time with
// the fully synchronized cost on every bundled app (E10).
func asyncVsSync() error {
	fmt.Println("=== E10: asynchronous (General MT) vs fully synchronized execution ===")
	ctx := context.Background()
	headers := []string{"app", "async window", "bottleneck task", "fully-sync parallel", "fully-sync sequential"}
	var rows [][]string
	for _, name := range core.AppNames() {
		tr, err := core.AppTrace(name)
		if err != nil {
			return err
		}
		ins, err := tr.MTInstance(shyra.GranularityBit)
		if err != nil {
			return err
		}
		async, err := core.AnalyzeAsync(ctx, ins)
		if err != nil {
			return err
		}
		par, err := solve.Run(ctx, "ga", solve.NewMT(ins, parallel), solve.Options{Pop: 60, Generations: 150, Seed: 1})
		if err != nil {
			return err
		}
		seqOpt := model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}
		seq, err := solve.Run(ctx, "exact", solve.NewMT(ins, seqOpt), solve.Options{})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", async.Window),
			ins.Tasks[async.Bottleneck].Name,
			fmt.Sprintf("%d", par.Cost),
			fmt.Sprintf("%d", seq.Cost),
		})
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Println("\nasynchronous execution overlaps per-task reconfiguration with the other tasks'")
	fmt.Println("computation (window = slowest task); it always beats sequential uploads and the")
	fmt.Println("MUX task (24 of 48 switches) is the bottleneck throughout")
	return nil
}

// privGlobal demonstrates the private-global-resource extension (E11):
// three tasks share four private I/O pins whose ownership must migrate
// between computation phases, forcing global hyperreconfigurations.
func privGlobal() error {
	fmt.Println("=== E11: private global resources (shared I/O pins) ===")
	ins, err := privGlobalWorkload()
	if err != nil {
		return err
	}
	sol, err := mtswitch.SolvePrivateGlobal(context.Background(), ins, parallel, solve.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("workload: m=%d tasks, n=%d steps, %d private I/O pins, W=%d per global hyperreconfiguration\n",
		ins.Base.NumTasks(), ins.Base.Steps(), ins.G, ins.W)
	fmt.Printf("optimal global windowing: %d windows starting at steps %v, total cost %d\n",
		len(sol.GlobalStarts), sol.GlobalStarts, sol.Cost)
	for k, w := range sol.Windows {
		fmt.Printf("  window %d: local+private cost %d\n", k, w.Cost)
	}
	fmt.Println("\nownership of the pins flips mid-run, so at least two global windows are required;")
	fmt.Println("the outer DP places the global hyperreconfiguration exactly at the flip")
	return nil
}

// privGlobalWorkload builds the E11 instance: task A drives the pins in
// the first half, task C in the second half, task B never does.
func privGlobalWorkload() (*mtswitch.PrivateGlobalInstance, error) {
	const n = 12
	tasks := []model.Task{
		{Name: "A", Local: 4, V: 4},
		{Name: "B", Local: 4, V: 4},
		{Name: "C", Local: 4, V: 4},
	}
	local := make([][]bitset.Set, len(tasks))
	priv := make([][]bitset.Set, len(tasks))
	for j := range tasks {
		local[j] = make([]bitset.Set, n)
		priv[j] = make([]bitset.Set, n)
		for i := 0; i < n; i++ {
			local[j][i] = bitset.FromMembers(4, (i+j)%4)
			priv[j][i] = bitset.New(4)
		}
	}
	for i := 0; i < n/2; i++ {
		priv[0][i] = bitset.FromMembers(4, 0, 1) // A owns pins 0,1 early
	}
	for i := n / 2; i < n; i++ {
		priv[2][i] = bitset.FromMembers(4, 0, 1, 2) // C owns pins 0..2 late
	}
	base, err := model.NewMTSwitchInstance(tasks, local)
	if err != nil {
		return nil, err
	}
	return mtswitch.NewPrivateGlobalInstance(base, 4, priv, 8)
}

// mtDAG demonstrates the Multi Task DAG cost model (E13): two tasks on
// a coarse-grained machine with three routability levels each; the
// joint DP exploits task-parallel uploads, while independent per-task
// scheduling is an upper bound.
func mtDAG() error {
	fmt.Println("=== E13: the Multi Task DAG cost model ===")
	ctx := context.Background()
	levels := func() []model.Hypercontext {
		return []model.Hypercontext{
			{Name: "local", PerStep: 1, Sat: bitset.FromMembers(3, 0)},
			{Name: "row", PerStep: 3, Sat: bitset.FromMembers(3, 0, 1)},
			{Name: "global", PerStep: 7, Sat: bitset.Full(3)},
		}
	}
	mk := func(name string, v model.Cost, seq []int) (solve.MTDAGTask, error) {
		inst, err := dag.Chain(3, levels(), seq, 1)
		if err != nil {
			return solve.MTDAGTask{}, err
		}
		return solve.MTDAGTask{Name: name, V: v, Inst: inst}, nil
	}
	// Task A needs bursts of row routing; task B one global transpose.
	a, err := mk("A", 2, []int{0, 1, 1, 0, 0, 1, 1, 0, 0, 0})
	if err != nil {
		return err
	}
	b, err := mk("B", 4, []int{0, 0, 0, 0, 2, 2, 0, 0, 0, 0})
	if err != nil {
		return err
	}
	tasks := []solve.MTDAGTask{a, b}
	headers := []string{"uploads", "joint DP", "per-task DP (upper bound)"}
	var rows [][]string
	for _, c := range []struct {
		name string
		opt  model.CostOptions
	}{
		{"task-parallel", parallel},
		{"task-sequential", model.CostOptions{HyperUpload: model.TaskSequential, ReconfUpload: model.TaskSequential}},
	} {
		inst := solve.NewMTDAG(tasks, c.opt)
		joint, err := solve.Run(ctx, "exact", inst, solve.Options{})
		if err != nil {
			return err
		}
		per, err := solve.Run(ctx, "pertask", inst, solve.Options{})
		if err != nil {
			return err
		}
		rows = append(rows, []string{c.name, fmt.Sprintf("%d", joint.Cost), fmt.Sprintf("%d", per.Cost)})
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Println("\nunder task-sequential uploads the cost separates and the per-task DP is optimal;")
	fmt.Println("under task-parallel uploads the joint DP coordinates the tasks' quality levels")
	return nil
}

// mesh runs the multi-task analysis on the reconfigurable mesh (E15) —
// the architecture the paper names as the canonical fully synchronized
// machine.  Tasks are the mesh rows.
func mesh() error {
	fmt.Println("=== E15: reconfigurable mesh (fully synchronized by construction) ===")
	ctx := context.Background()
	workloads := []struct {
		name  string
		build func() (*rmesh.Program, error)
	}{
		{"rotate-and-or 2x8, 8 rounds", func() (*rmesh.Program, error) {
			return rmesh.RotateAndOr(8, 8, []bool{true, false, false, true, false, false, true, false})
		}},
		{"broadcast-or 4x6", func() (*rmesh.Program, error) {
			in := make([][]bool, 4)
			for r := range in {
				in[r] = make([]bool, 6)
			}
			in[2][3] = true
			return rmesh.BroadcastOR(4, 6, in)
		}},
		{"prefix-or 1x12", func() (*rmesh.Program, error) {
			in := make([]bool, 12)
			in[3], in[9] = true, true
			return rmesh.PrefixOR(in)
		}},
	}
	headers := []string{"workload", "rows (m)", "n", "disabled", "aligned", "GA", "GA %"}
	var rows [][]string
	for _, wl := range workloads {
		prog, err := wl.build()
		if err != nil {
			return err
		}
		tr, err := rmesh.Run(prog)
		if err != nil {
			return err
		}
		ins, err := tr.MTInstanceDelta()
		if err != nil {
			return err
		}
		mtInst := solve.NewMT(ins, parallel)
		al, err := solve.Run(ctx, "aligned", mtInst, solve.Options{})
		if err != nil {
			return err
		}
		res, err := solve.Run(ctx, "ga", mtInst, solve.Options{Pop: 60, Generations: 150, Seed: 1})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			wl.name,
			fmt.Sprintf("%d", ins.NumTasks()),
			fmt.Sprintf("%d", ins.Steps()),
			fmt.Sprintf("%d", ins.DisabledCost()),
			fmt.Sprintf("%d", al.Cost),
			fmt.Sprintf("%d", res.Cost),
			fmt.Sprintf("%.1f%%", 100*float64(res.Cost)/float64(ins.DisabledCost())),
		})
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Println("\nthe same multi-task machinery prices a second, very different architecture;")
	fmt.Println("idle rows and phase alternation make partial hyperreconfiguration pay, while the")
	fmt.Println("single-step prefix-or shows the degenerate case: one reconfiguration cannot")
	fmt.Println("amortize the mandatory initial hyperreconfiguration (200% of disabled)")
	return nil
}

// appsSweep runs the full Section 6 analysis on every bundled app (E8).
func appsSweep() error {
	fmt.Println("=== E8: all bundled applications (bit granularity, task-parallel) ===")
	headers := []string{"app", "n", "disabled", "single opt", "single %", "multi best", "multi %"}
	var rows [][]string
	for _, name := range core.AppNames() {
		tr, err := core.AppTrace(name)
		if err != nil {
			return err
		}
		a, err := core.AnalyzeTrace(context.Background(), tr, core.Options{
			Solve: solve.Options{Pop: 80, Generations: 200, Seed: 1},
		})
		if err != nil {
			return err
		}
		best := a.Best()
		rows = append(rows, []string{
			name, fmt.Sprintf("%d", tr.Len()),
			fmt.Sprintf("%d", a.Disabled),
			fmt.Sprintf("%d", a.SingleOpt.Cost),
			fmt.Sprintf("%.1f%%", a.Percent(a.SingleOpt.Cost)),
			fmt.Sprintf("%d", best.Cost),
			fmt.Sprintf("%.1f%%", a.Percent(best.Cost)),
		})
	}
	fmt.Print(report.Table(headers, rows))
	return nil
}
