// Command hyperverify proves a multi-task hyperreconfiguration schedule
// functionally sound: it re-runs the application on a
// hypercontext-gated SHyRA (only switches inside the schedule's
// hypercontexts may be written) and checks the register trajectory is
// identical to the unrestricted run.
//
// Usage:
//
//	mtopt -app counterdd -gran delta -solver all -out sched.json
//	hyperverify -app counterdd -sched sched.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/shyra"
	"repro/internal/traceio"
)

func main() {
	var (
		app       = flag.String("app", "counter", "application whose trace the schedule was solved for")
		schedPath = flag.String("sched", "", "schedule JSON produced by mtopt -out (required)")
	)
	flag.Parse()

	if err := run(*app, *schedPath); err != nil {
		fmt.Fprintln(os.Stderr, "hyperverify:", err)
		os.Exit(1)
	}
}

func run(app, schedPath string) error {
	if schedPath == "" {
		return fmt.Errorf("-sched is required")
	}
	f, err := os.Open(schedPath)
	if err != nil {
		return err
	}
	defer f.Close()
	tasks, sched, err := traceio.ReadScheduleJSON(f)
	if err != nil {
		return err
	}

	tr, err := core.AppTrace(app)
	if err != nil {
		return err
	}
	fmt.Printf("application: %s (%d reconfiguration steps)\n", tr.Program, tr.Len())
	fmt.Printf("schedule: %d tasks from %s\n", len(tasks), schedPath)

	rep, err := shyra.ReplayMT(tr, sched)
	if err != nil {
		return fmt.Errorf("schedule is NOT functionally sound: %w", err)
	}
	disabled := tr.Len() * shyra.ConfigBits
	fmt.Printf("replay: OK — register trajectory identical to the unrestricted run\n")
	fmt.Printf("uploaded %d configuration bits total (disabled machine: %d, %.1f%%)\n",
		rep.TotalUploaded, disabled, 100*float64(rep.TotalUploaded)/float64(disabled))

	// If the schedule's task shapes match SHyRA's decomposition, price
	// it under the paper's cost model too.
	paperTasks := shyra.Tasks()
	match := len(tasks) == len(paperTasks)
	for j := 0; match && j < len(tasks); j++ {
		match = tasks[j].Local == paperTasks[j].Local
	}
	if match {
		for _, g := range []shyra.Granularity{shyra.GranularityBit, shyra.GranularityUnit, shyra.GranularityDelta} {
			ins, err := tr.MTInstance(g)
			if err != nil {
				return err
			}
			opt := model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
			cost, err := ins.Cost(sched, opt)
			if err != nil {
				fmt.Printf("cost model (%s granularity): schedule infeasible (%v)\n", g, err)
				continue
			}
			fmt.Printf("cost model (%s granularity): %d (%.1f%% of disabled)\n",
				g, cost, 100*float64(cost)/float64(ins.DisabledCost()))
		}
	}
	return nil
}
