package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/shyra"
	"repro/internal/traceio"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// writeSchedule solves the app at the granularity and writes the
// schedule file, returning its path.
func writeSchedule(t *testing.T, app string, g shyra.Granularity) string {
	t.Helper()
	tr, err := core.AppTrace(app)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := tr.MTInstance(g)
	if err != nil {
		t.Fatal(err)
	}
	opt := model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
	sol, err := mtswitch.SolveAligned(context.Background(), ins, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sched.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := traceio.WriteScheduleJSON(f, ins, sol.Schedule); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifySoundSchedule(t *testing.T) {
	path := writeSchedule(t, "counterdd", shyra.GranularityDelta)
	out, err := capture(t, func() error { return run("counterdd", path) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "replay: OK") {
		t.Fatalf("expected successful replay:\n%s", out)
	}
	if !strings.Contains(out, "cost model (delta granularity):") {
		t.Fatalf("expected cost-model pricing:\n%s", out)
	}
}

func TestVerifyWrongAppFails(t *testing.T) {
	// A schedule solved for counterdd cannot drive the lfsr trace
	// (different step counts).
	path := writeSchedule(t, "counterdd", shyra.GranularityBit)
	if _, err := capture(t, func() error { return run("lfsr", path) }); err == nil {
		t.Fatal("accepted schedule for a different trace")
	}
}

func TestVerifyErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run("counter", "") }); err == nil {
		t.Fatal("accepted missing -sched")
	}
	if _, err := capture(t, func() error { return run("counter", "/nonexistent.json") }); err == nil {
		t.Fatal("accepted missing file")
	}
	path := writeSchedule(t, "counter", shyra.GranularityBit)
	if _, err := capture(t, func() error { return run("nope", path) }); err == nil {
		t.Fatal("accepted unknown app")
	}
}
