package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/workload"
)

// benchLimits are the node clamps the bench mirrors everywhere — the
// spawned nodes, the router and the shard-key computation — matching
// the serve defaults so external clusters started with plain
// `hyperd -peers ...` hash identically.
var benchLimits = service.RouteLimits{
	MaxSolveTimeout:  time.Minute,
	MaxFrontierBytes: 1 << 30,
}

type clusterBenchOpts struct {
	solver, gen            string
	tasks, steps, switches int
	conc                   int
	duration               time.Duration
	workers                int
	nodes                  int
	routerURL, peers       string
	twins                  int
	jsonPath               string
}

// clusterBenchReport is the -json document.
type clusterBenchReport struct {
	Benchmark    string  `json:"benchmark"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Nodes        int     `json:"nodes"`
	InProcess    bool    `json:"in_process"`
	Solver       string  `json:"solver"`
	Generator    string  `json:"generator"`
	Conc         int     `json:"conc"`
	PhaseSeconds float64 `json:"phase_seconds"`

	SingleNodeCachedRPS float64 `json:"single_node_cached_rps"`
	ClusterCachedRPS    float64 `json:"cluster_cached_rps"`
	ClusterVsSingle     float64 `json:"cluster_vs_single"`

	Twins struct {
		Pairs             int   `json:"pairs"`
		TwinCacheHits     int   `json:"twin_cache_hits"`
		PeerFillHits      int64 `json:"peer_fill_hits"`
		ByteIdentical     bool  `json:"byte_identical_schedules"`
		RouterFailovers   int64 `json:"router_failovers"`
		RouterNoNodeTotal int64 `json:"router_no_node_total"`
	} `json:"twins"`
}

// benchNode is one in-process cluster node.
type benchNode struct {
	srv     *service.Server
	httpSrv *http.Server
}

// clusterBench is `hyperd bench -cluster`: spawn (or attach to) an
// N-node cluster plus a router, measure cached serving throughput
// against a single node, then run the twin-correctness phase — every
// structural twin submitted to a NON-owner node must be answered
// through peer cache fill with a schedule byte-identical to the
// single-node answer.
func clusterBench(w io.Writer, o clusterBenchOpts) error {
	generate, ok := workload.Generators()[o.gen]
	if !ok {
		return fmt.Errorf("unknown generator %q", o.gen)
	}

	var (
		nodeURLs  []string
		routerURL string
		cleanup   []func()
	)
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	external := o.routerURL != "" || o.peers != ""
	if external {
		if o.routerURL == "" || o.peers == "" {
			return fmt.Errorf("external cluster mode needs both -router and -peers")
		}
		routerURL = strings.TrimRight(o.routerURL, "/")
		for _, p := range strings.Split(o.peers, ",") {
			id, err := cluster.NormalizeMemberURL(p)
			if err != nil {
				return fmt.Errorf("-peers: %w", err)
			}
			nodeURLs = append(nodeURLs, id)
		}
	} else {
		if o.nodes < 2 {
			return fmt.Errorf("cluster bench needs at least 2 nodes, got %d", o.nodes)
		}
		var err error
		nodeURLs, routerURL, cleanup, err = spawnCluster(o.nodes, o.workers)
		if err != nil {
			return err
		}
	}

	// The reference single node: the correctness oracle and the cached
	// throughput baseline.
	refSrv := service.New(service.Config{
		Workers:          o.workers,
		QueueDepth:       4096,
		CacheEntries:     1 << 20,
		MaxSolveTimeout:  benchLimits.MaxSolveTimeout,
		MaxFrontierBytes: benchLimits.MaxFrontierBytes,
		NodeID:           "bench-single",
	})
	refLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	refHTTP := &http.Server{Handler: refSrv.Handler()}
	go refHTTP.Serve(refLn)
	refURL := "http://" + refLn.Addr().String()
	cleanup = append(cleanup, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		refSrv.Shutdown(ctx)
		refHTTP.Shutdown(ctx)
	})

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.conc}}
	makeBody := func(seed int64) ([]byte, error) {
		mt, err := generate(workload.Config{
			Tasks: o.tasks, Steps: o.steps, Switches: o.switches, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(service.SolveRequest{
			Solver:   o.solver,
			Instance: service.WireInstanceFrom(mt),
		})
	}
	post := func(base string, body []byte) (*service.JobStatus, error) {
		resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %d: %.200s", base, resp.StatusCode, raw)
		}
		var st service.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, err
		}
		return &st, nil
	}
	postOK := func(base string) func([]byte) error {
		return func(body []byte) error {
			_, err := post(base, body)
			return err
		}
	}

	fmt.Fprintf(w, "hyperd bench -cluster: nodes=%d solver=%s gen=%s m=%d n=%d l=%d conc=%d phase=%v gomaxprocs=%d\n",
		len(nodeURLs), o.solver, o.gen, o.tasks, o.steps, o.switches, o.conc, o.duration, runtime.GOMAXPROCS(0))

	report := &clusterBenchReport{
		Benchmark:    "hyperd cluster: consistent-hash routing, peer cache fill, cross-node singleflight",
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Nodes:        len(nodeURLs),
		InProcess:    !external,
		Solver:       o.solver,
		Generator:    o.gen,
		Conc:         o.conc,
		PhaseSeconds: o.duration.Seconds(),
	}

	// Phase 1 — single-node cached baseline.
	hot, err := makeBody(-1)
	if err != nil {
		return err
	}
	if _, err := post(refURL, hot); err != nil {
		return fmt.Errorf("single-node warm-up: %w", err)
	}
	single, err := phase(o.conc, o.duration, func() ([]byte, error) { return hot, nil }, postOK(refURL))
	if err != nil {
		return err
	}
	report.SingleNodeCachedRPS = single.rate()
	fmt.Fprintf(w, "single cached:  %d served (%d failed) in %v = %.1f req/s\n",
		single.requests, single.failures, single.elapsed.Round(time.Millisecond), single.rate())

	// Phase 2 — cluster cached, through the router.
	if _, err := post(routerURL, hot); err != nil {
		return fmt.Errorf("cluster warm-up: %w", err)
	}
	clustered, err := phase(o.conc, o.duration, func() ([]byte, error) { return hot, nil }, postOK(routerURL))
	if err != nil {
		return err
	}
	report.ClusterCachedRPS = clustered.rate()
	if single.rate() > 0 {
		report.ClusterVsSingle = clustered.rate() / single.rate()
	}
	fmt.Fprintf(w, "cluster cached: %d served (%d failed) in %v = %.1f req/s (%.2fx single)\n",
		clustered.requests, clustered.failures, clustered.elapsed.Round(time.Millisecond),
		clustered.rate(), report.ClusterVsSingle)

	// Phase 3 — twin correctness: original via the router, structural
	// twin directly to a node that does NOT own the key.  The twin must
	// be served through peer fill (cache hit, no local solve) and its
	// schedule must match the single-node oracle byte for byte.
	ring, err := cluster.NewRing(nodeURLs, cluster.DefaultVNodes)
	if err != nil {
		return err
	}
	byteIdentical := true
	twinHits := 0
	for i := 0; i < o.twins; i++ {
		mt, err := generate(workload.Config{
			Tasks: o.tasks, Steps: o.steps, Switches: o.switches, Seed: int64(1000 + i),
		})
		if err != nil {
			return err
		}
		wire := service.WireInstanceFrom(mt)
		orig := &service.SolveRequest{Solver: o.solver, Instance: wire}
		twin := &service.SolveRequest{Solver: o.solver, Instance: twinWire(wire)}

		origBody, err := json.Marshal(orig)
		if err != nil {
			return err
		}
		twinBody, err := json.Marshal(twin)
		if err != nil {
			return err
		}
		if _, err := post(routerURL, origBody); err != nil {
			return fmt.Errorf("twin pair %d original: %w", i, err)
		}

		key, err := orig.RoutingKey(benchLimits)
		if err != nil {
			return err
		}
		owner := ring.Owner(key)
		nonOwner := ""
		for _, u := range nodeURLs {
			if u != owner {
				nonOwner = u
				break
			}
		}
		st, err := post(nonOwner, twinBody)
		if err != nil {
			return fmt.Errorf("twin pair %d: %w", i, err)
		}
		if st.CacheHit {
			twinHits++
		}

		// The oracle answers the same pair on one node.
		if _, err := post(refURL, origBody); err != nil {
			return err
		}
		refSt, err := post(refURL, twinBody)
		if err != nil {
			return err
		}
		if st.Result == nil || refSt.Result == nil {
			return fmt.Errorf("twin pair %d: missing result", i)
		}
		if st.Result.Cost != refSt.Result.Cost {
			return fmt.Errorf("twin pair %d: cluster cost %d != single-node cost %d",
				i, st.Result.Cost, refSt.Result.Cost)
		}
		if !bytes.Equal(st.Result.Schedule, refSt.Result.Schedule) {
			byteIdentical = false
			fmt.Fprintf(w, "twin pair %d: schedule bytes differ from single-node oracle\n", i)
		}
	}
	report.Twins.Pairs = o.twins
	report.Twins.TwinCacheHits = twinHits
	report.Twins.ByteIdentical = byteIdentical

	var fillHits int64
	for _, u := range nodeURLs {
		v, err := scrapeCounter(client, u, "hyperd_cluster_peer_fill_hits_total")
		if err != nil {
			return err
		}
		fillHits += v
	}
	report.Twins.PeerFillHits = fillHits
	report.Twins.RouterFailovers, _ = scrapeCounter(client, routerURL, "hyperd_router_failovers_total")
	report.Twins.RouterNoNodeTotal, _ = scrapeCounter(client, routerURL, "hyperd_router_no_node_total")

	fmt.Fprintf(w, "twins: %d pairs, %d served as cache hits on non-owner nodes, %d peer fills, byte-identical=%t\n",
		o.twins, twinHits, fillHits, byteIdentical)

	if o.jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(o.jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.jsonPath)
	}

	if single.failures > 0 || clustered.failures > 0 {
		return fmt.Errorf("%d requests failed", single.failures+clustered.failures)
	}
	if fillHits == 0 {
		return fmt.Errorf("no peer cache fills observed — the cluster served twins without the fill protocol")
	}
	if twinHits < o.twins {
		return fmt.Errorf("%d/%d twins missed the peer-filled cache", o.twins-twinHits, o.twins)
	}
	if !byteIdentical {
		return fmt.Errorf("cluster schedules are not byte-identical to single-node")
	}
	return nil
}

// spawnCluster starts n in-process nodes wired with peer-fill clients,
// plus a router in front.  Listeners come up first so every node knows
// the full member list before it serves.
func spawnCluster(n, workers int) (nodeURLs []string, routerURL string, cleanup []func(), err error) {
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", cleanup, err
		}
		lns[i] = ln
		nodeURLs = append(nodeURLs, "http://"+ln.Addr().String())
	}
	for i, ln := range lns {
		set, err := cluster.NewMemberSet(nodeURLs, cluster.DefaultVNodes)
		if err != nil {
			return nil, "", cleanup, err
		}
		self := nodeURLs[i]
		pc, err := cluster.NewPeerClient(cluster.PeerClientConfig{Self: self, Members: set})
		if err != nil {
			return nil, "", cleanup, err
		}
		srv := service.New(service.Config{
			Workers:          workers,
			QueueDepth:       4096,
			CacheEntries:     1 << 20,
			MaxSolveTimeout:  benchLimits.MaxSolveTimeout,
			MaxFrontierBytes: benchLimits.MaxFrontierBytes,
			NodeID:           fmt.Sprintf("bench-node-%d", i),
			PeerFill:         pc,
			ClusterStatus:    func() *service.RingStatus { return set.Status(self) },
		})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		node := benchNode{srv: srv, httpSrv: hs}
		cleanup = append(cleanup, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			node.srv.Shutdown(ctx)
			node.httpSrv.Shutdown(ctx)
		})
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:  nodeURLs,
		Limits: benchLimits,
	})
	if err != nil {
		return nil, "", cleanup, err
	}
	cleanup = append(cleanup, rt.Close)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", cleanup, err
	}
	rHTTP := &http.Server{Handler: rt.Handler()}
	go rHTTP.Serve(rln)
	routerURL = "http://" + rln.Addr().String()
	cleanup = append(cleanup, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rHTTP.Shutdown(ctx)
	})
	return nodeURLs, routerURL, cleanup, nil
}

// twinWire builds a structural twin of a wire instance: task order
// reversed, tasks renamed, every task's switch columns reversed.  The
// canonical form is unchanged; the literal request is not.
func twinWire(in *service.WireInstance) *service.WireInstance {
	m := len(in.Tasks)
	out := &service.WireInstance{}
	for i := m - 1; i >= 0; i-- {
		t := in.Tasks[i]
		out.Tasks = append(out.Tasks, service.WireTask{
			Name:  fmt.Sprintf("twin_%d", m-1-i),
			Local: t.Local,
			V:     t.V,
		})
	}
	for _, row := range in.Reqs {
		tr := make([]string, 0, m)
		for i := m - 1; i >= 0; i-- {
			tr = append(tr, reverseCell(row[i]))
		}
		out.Reqs = append(out.Reqs, tr)
	}
	return out
}

func reverseCell(s string) string {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// scrapeCounter pulls one Prometheus counter off a /metrics page
// (labels ignored, values summed).
func scrapeCounter(client *http.Client, base, name string) (int64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? (\d+)$`)
	var total int64
	for _, m := range re.FindAllSubmatch(raw, -1) {
		v, err := strconv.ParseInt(string(m[1]), 10, 64)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}
