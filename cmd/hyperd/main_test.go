package main

import (
	"strings"
	"testing"
)

func TestBenchSmoke(t *testing.T) {
	var out strings.Builder
	err := runBench([]string{
		"-solver", "aligned", "-gen", "phased",
		"-tasks", "2", "-steps", "16", "-switches", "8",
		"-conc", "4", "-duration", "200ms",
	}, &out)
	if err != nil {
		t.Fatalf("bench failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"uncached:", "cached:", "req/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("bench output missing %q:\n%s", want, s)
		}
	}
}

func TestBenchRejectsUnknownGenerator(t *testing.T) {
	var out strings.Builder
	if err := runBench([]string{"-gen", "nope", "-duration", "10ms"}, &out); err == nil {
		t.Fatal("accepted unknown generator")
	}
}

func TestServeRejectsBadAddr(t *testing.T) {
	if err := runServe([]string{"-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("accepted unusable listen address")
	}
}
