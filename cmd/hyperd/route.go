package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/resilience"
	"repro/internal/service"
)

// runRoute is `hyperd route`: the cluster front door.  It hashes solve
// submissions onto the nodes by canonical form, fails over along the
// ring, and pins job polls and streaming sessions to the node holding
// their state.  -max-timeout and -max-frontier-bytes must mirror the
// nodes' serve flags so the router's shard keys align with the nodes'
// canonical store keys.
func runRoute(args []string) error {
	fs := flag.NewFlagSet("hyperd route", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8078", "listen address")
		peers      = fs.String("peers", "", "comma-separated hyperd node base URLs (required)")
		vnodes     = fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the hash ring (must match the nodes')")
		healthInt  = fs.Duration("health-interval", time.Second, "node health sweep period")
		sticky     = fs.Int("sticky", cluster.DefaultStickyCap, "max learned job/session placements per table (LRU beyond)")
		brkThresh  = fs.Int("breaker-threshold", 5, "consecutive node transport failures that trip its breaker")
		brkCool    = fs.Duration("breaker-cooldown", 10*time.Second, "how long a tripped node breaker fails fast before probing")
		maxTimeout = fs.Duration("max-timeout", time.Minute, "the nodes' per-job deadline cap, mirrored for shard hashing")
		maxBytes   = fs.Int64("max-frontier-bytes", 1<<30, "the nodes' per-job memory budget, mirrored for shard hashing")
		drain      = fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers == "" {
		return fmt.Errorf("-peers is required")
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:          strings.Split(*peers, ","),
		VNodes:         *vnodes,
		HealthInterval: *healthInt,
		StickyCap:      *sticky,
		Breaker:        resilience.BreakerConfig{Threshold: *brkThresh, Cooldown: *brkCool},
		Limits: service.RouteLimits{
			MaxSolveTimeout:  *maxTimeout,
			MaxFrontierBytes: *maxBytes,
		},
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hyperd route: listening on http://%s, %d members, %d vnodes\n",
		ln.Addr(), len(rt.Members().Members()), *vnodes)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "hyperd route: shutting down")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "hyperd route: bye")
	return nil
}
