// Command hyperd is the concurrent solve daemon: it serves the solver
// registry over HTTP/JSON with a bounded worker pool, a bounded job
// queue and a content-addressed result cache (see internal/service for
// the wire format).
//
// Usage:
//
//	hyperd [-addr :8077] [-workers N] [-queue N] [-cache N] [-max-timeout 60s]
//	       [-max-frontier-bytes N] [-breaker-threshold N] [-breaker-cooldown 10s]
//	       [-max-sessions N] [-session-bytes N] [-partition-steps N]
//	       [-data-dir DIR] [-fsync always|interval|never] [-wal-segment-bytes N]
//	hyperd bench [-solver aligned] [-gen phased] [-tasks 4] [-steps 64]
//	             [-switches 16] [-conc 32] [-duration 2s]
//	hyperd bench -sessions [-solver exact] [-gen dense] [-tasks 4] [-steps 64]
//	             [-switches 16] [-batch 2] [-no-pruning]
//	hyperd bench -cluster [-nodes 3] [-twins 24] [-json out.json]
//	             [-router URL -peers URL,URL,...]
//	hyperd bench -restart-midway [-restart-jobs 24] [-fsync always]
//	             [-json out.json]
//	hyperd route -peers URL,URL,... [-addr 127.0.0.1:8078] [-vnodes 64]
//	             [-sticky N] [-max-timeout 60s] [-max-frontier-bytes N]
//
// The default mode serves until SIGINT/SIGTERM, then shuts down
// gracefully: new submits are rejected, queued jobs drain as canceled,
// and in-flight solves stop at their next cancellation checkpoint.
// With -data-dir the daemon journals job submissions, completions and
// session step batches to a write-ahead log under that directory and
// spills the canonical cache and evicted session checkpoints to a
// content-addressed disk store; after a crash (or kill -9) a restart
// on the same directory replays the journal, warm-loads the cache,
// revives streaming sessions and re-enqueues incomplete jobs. The
// graceful drain compacts and flushes the WAL before exit.
// With -peers and -self it joins a cluster: canonical-cache misses are
// filled from the ring siblings over GET /v1/cache/{key} before the
// local pool solves, and a fill may park on a sibling's in-flight twin
// solve (cross-node singleflight).
//
// route is the cluster front door: it hashes solve submissions onto
// the nodes by canonical form (twins land on one owner), fails over
// along the ring past unhealthy members, and pins job polls and
// streaming sessions to the node holding their state.
//
// bench starts an in-process daemon on a loopback port and drives it
// over real HTTP with synthetic internal/workload instances: first an
// uncached phase (every request a distinct instance, measuring solver
// throughput), then a cached phase (one hot instance, measuring
// serving throughput).
//
// bench -sessions streams one workload.Streaming trace through the
// session API batch by batch, checks the final schedule against the
// one-shot /v1/solve of the full trace, and reports the incremental
// re-solve cost (states expanded per batch) against the from-scratch
// cost.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/portfolio"
	"repro/internal/profutil"
	"repro/internal/service"
	"repro/internal/workload"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "bench" {
		if err := runBench(args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "hyperd bench:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 && args[0] == "route" {
		if err := runRoute(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "hyperd route:", err)
			os.Exit(1)
		}
		return
	}
	if err := runServe(args); err != nil {
		fmt.Fprintln(os.Stderr, "hyperd:", err)
		os.Exit(1)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("hyperd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8077", "listen address")
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 256, "job queue depth")
		cache      = fs.Int("cache", 1024, "result cache entries (negative disables)")
		maxTimeout = fs.Duration("max-timeout", time.Minute, "per-job solve deadline cap (0 = none)")
		maxBytes   = fs.Int64("max-frontier-bytes", 1<<30, "per-job solver memory budget in bytes; exhaustion degrades exact solves to beam search (0 = none)")
		brkThresh  = fs.Int("breaker-threshold", 5, "consecutive solver panics/timeouts that trip its circuit breaker (negative disables)")
		brkCool    = fs.Duration("breaker-cooldown", 10*time.Second, "how long a tripped breaker fails fast before probing")
		maxSess    = fs.Int("max-sessions", 64, "concurrent streaming sessions")
		sessBytes  = fs.Int64("session-bytes", 64<<20, "total session engine memory before LRU engines are checkpointed out (negative disables)")
		partSteps  = fs.Int("partition-steps", 256, "auto-dispatch exact mtswitch solves at or above this step count to the exact-partitioned solver (0 disables)")
		drain      = fs.Duration("drain", 30*time.Second, "graceful shutdown budget")

		dataDir  = fs.String("data-dir", "", "durable state directory: journal jobs/sessions to a WAL and spill caches/checkpoints for crash recovery (empty = in-memory only)")
		fsyncPol = fs.String("fsync", "always", "WAL flush policy: always, interval or never")
		fsyncInt = fs.Duration("fsync-interval", 100*time.Millisecond, "background WAL flush period under -fsync interval")
		walSeg   = fs.Int64("wal-segment-bytes", 8<<20, "WAL segment rotation size in bytes")

		peers      = fs.String("peers", "", "comma-separated base URLs of every cluster node, this one included (enables peer cache fill)")
		self       = fs.String("self", "", "this node's own base URL as listed in -peers (required with -peers)")
		nodeID     = fs.String("node-id", "", "node identity reported in /v1/healthz (default: -self, else \"hyperd\")")
		vnodes     = fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the hash ring (must match the router's)")
		peerFanout = fs.Int("peer-fanout", cluster.DefaultFanout, "ring siblings asked per canonical-cache miss")
		peerWait   = fs.Duration("peer-wait", cluster.DefaultPeerWait, "how long a sibling may park a fill on its in-flight twin solve")
		healthInt  = fs.Duration("health-interval", time.Second, "peer health sweep period (cluster mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fsync, err := durable.ParseFsyncPolicy(*fsyncPol)
	if err != nil {
		return fmt.Errorf("-fsync: %w", err)
	}
	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		MaxSolveTimeout:  *maxTimeout,
		MaxFrontierBytes: *maxBytes,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		MaxSessions:      *maxSess,
		SessionBytes:     *sessBytes,
		PartitionSteps:   *partSteps,
		NodeID:           *nodeID,
		DataDir:          *dataDir,
		Fsync:            fsync,
		FsyncInterval:    *fsyncInt,
		WALSegmentBytes:  *walSeg,
	}
	if *peers != "" {
		if *self == "" {
			return fmt.Errorf("-peers requires -self (this node's own URL in the list)")
		}
		selfID, err := cluster.NormalizeMemberURL(*self)
		if err != nil {
			return fmt.Errorf("-self: %w", err)
		}
		set, err := cluster.NewMemberSet(strings.Split(*peers, ","), *vnodes)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		if _, ok := set.Member(selfID); !ok {
			return fmt.Errorf("-self %q is not in -peers %q", selfID, *peers)
		}
		pc, err := cluster.NewPeerClient(cluster.PeerClientConfig{
			Self:    selfID,
			Members: set,
			Fanout:  *peerFanout,
			Wait:    *peerWait,
		})
		if err != nil {
			return err
		}
		cfg.PeerFill = pc
		cfg.ClusterStatus = func() *service.RingStatus { return set.Status(selfID) }
		if cfg.NodeID == "" {
			cfg.NodeID = selfID
		}
		checker := cluster.NewHealthChecker(set, *healthInt, nil, selfID)
		checker.Start()
		defer checker.Stop()
		fmt.Fprintf(os.Stderr, "hyperd: cluster mode, self=%s members=%d vnodes=%d\n",
			selfID, len(set.Members()), *vnodes)
	}

	srv, err := service.Open(cfg)
	if err != nil {
		return err
	}
	// The learned-dispatch win table persists alongside the WAL: races
	// observed before a restart keep steering dispatch after it.
	dispatchPath := ""
	if *dataDir != "" {
		dispatchPath = filepath.Join(*dataDir, "dispatch.json")
		if err := portfolio.DefaultTable.Load(dispatchPath); err != nil {
			fmt.Fprintf(os.Stderr, "hyperd: dispatch table: %v (starting empty)\n", err)
		} else if n := portfolio.DefaultTable.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "hyperd: dispatch table: %d learned buckets\n", n)
		}
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "hyperd: durable state in %s (fsync=%s)\n", *dataDir, *fsyncPol)
	}
	fmt.Fprintf(os.Stderr, "hyperd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "hyperd: shutting down (draining queue, cancelling in-flight solves)")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if dispatchPath != "" {
		if err := portfolio.DefaultTable.Save(dispatchPath); err != nil {
			fmt.Fprintf(os.Stderr, "hyperd: dispatch table save: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "hyperd: bye")
	return nil
}

// benchResult is one load phase's outcome.
type benchResult struct {
	requests int64
	failures int64
	elapsed  time.Duration
}

func (r benchResult) rate() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.requests) / r.elapsed.Seconds()
}

func runBench(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("hyperd bench", flag.ContinueOnError)
	var (
		solver   = fs.String("solver", "aligned", "registry solver to drive")
		gen      = fs.String("gen", "phased", "workload generator: phased, bursty, markov, uniform")
		tasks    = fs.Int("tasks", 4, "tasks per generated instance")
		steps    = fs.Int("steps", 64, "steps per generated instance")
		switches = fs.Int("switches", 16, "switches per task")
		conc     = fs.Int("conc", 32, "concurrent client connections")
		duration = fs.Duration("duration", 2*time.Second, "duration of each load phase")
		workers  = fs.Int("workers", 0, "server worker pool size (0 = GOMAXPROCS)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the bench run to this file")
		memProf  = fs.String("memprofile", "", "write an allocation profile after the bench run to this file")
		sessions = fs.Bool("sessions", false, "bench the streaming session API instead of the job queue")
		batch    = fs.Int("batch", 2, "mean rows per streamed batch (sessions mode)")
		noPrune  = fs.Bool("no-pruning", false, "disable the pruned-search layer (sessions mode; pruning forces full re-solves)")

		clusterM  = fs.Bool("cluster", false, "bench an N-node cluster behind a router instead of a single daemon")
		nodes     = fs.Int("nodes", 3, "in-process cluster size (cluster mode)")
		routerURL = fs.String("router", "", "existing router base URL; with -peers, bench that cluster instead of spawning one")
		peersF    = fs.String("peers", "", "existing cluster node base URLs, comma-separated (with -router)")
		twins     = fs.Int("twins", 24, "twin pairs driven through the peer-fill correctness phase (cluster mode)")
		jsonOut   = fs.String("json", "", "write the cluster bench report to this file (cluster or restart-midway mode)")

		restartMid  = fs.Bool("restart-midway", false, "load a durable daemon, crash it in-process (kill -9 shape) and measure recovery on restart")
		restartJobs = fs.Int("restart-jobs", 24, "distinct solves journaled before the crash (restart-midway mode)")
		benchFsync  = fs.String("fsync", "always", "WAL flush policy for the durable daemon (restart-midway mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *restartMid {
		fsync, err := durable.ParseFsyncPolicy(*benchFsync)
		if err != nil {
			return fmt.Errorf("-fsync: %w", err)
		}
		return restartBench(w, restartBenchOpts{
			solver: *solver, gen: *gen, tasks: *tasks, steps: *steps, switches: *switches,
			workers: *workers, jobs: *restartJobs, fsync: fsync, jsonPath: *jsonOut,
		})
	}
	if *sessions {
		return sessionBench(w, *solver, *gen, *tasks, *steps, *switches, *batch, *workers, *noPrune)
	}
	if *clusterM || *routerURL != "" {
		return clusterBench(w, clusterBenchOpts{
			solver: *solver, gen: *gen, tasks: *tasks, steps: *steps, switches: *switches,
			conc: *conc, duration: *duration, workers: *workers,
			nodes: *nodes, routerURL: *routerURL, peers: *peersF,
			twins: *twins, jsonPath: *jsonOut,
		})
	}
	generate, ok := workload.Generators()[*gen]
	if !ok {
		return fmt.Errorf("unknown generator %q", *gen)
	}
	stopProf, err := profutil.StartCPU(*cpuProf)
	if err != nil {
		return err
	}
	defer stopProf()
	defer func() {
		if err := profutil.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "hyperd bench:", err)
		}
	}()

	srv := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: 4096,
		// Uncached phases insert every distinct instance; keep them all
		// so the phases do not interfere.
		CacheEntries: 1 << 20,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		httpSrv.Shutdown(ctx)
	}()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *conc}}
	if err := preflightSolver(client, base, *solver); err != nil {
		return err
	}
	makeBody := func(seed int64) ([]byte, error) {
		mt, err := generate(workload.Config{
			Tasks: *tasks, Steps: *steps, Switches: *switches, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(service.SolveRequest{
			Solver:   *solver,
			Instance: service.WireInstanceFrom(mt),
		})
	}
	post := func(body []byte) error {
		resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	fmt.Fprintf(w, "hyperd bench: solver=%s gen=%s m=%d n=%d l=%d conc=%d phase=%v\n",
		*solver, *gen, *tasks, *steps, *switches, *conc, *duration)

	// Phase 1 — uncached baseline: every request is a fresh instance,
	// so the pool solves every one of them.
	var seed atomic.Int64
	uncached, err := phase(*conc, *duration, func() ([]byte, error) {
		return makeBody(seed.Add(1))
	}, post)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "uncached: %d solved (%d failed) in %v = %.1f req/s\n",
		uncached.requests, uncached.failures, uncached.elapsed.Round(time.Millisecond), uncached.rate())

	// Phase 2 — cached: one hot instance, warmed once, answered from
	// the content-addressed cache thereafter.
	hot, err := makeBody(-1)
	if err != nil {
		return err
	}
	if err := post(hot); err != nil {
		return fmt.Errorf("warm-up solve: %w", err)
	}
	cached, err := phase(*conc, *duration, func() ([]byte, error) { return hot, nil }, post)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cached:   %d solved (%d failed) in %v = %.1f req/s\n",
		cached.requests, cached.failures, cached.elapsed.Round(time.Millisecond), cached.rate())

	if uncached.failures > 0 || cached.failures > 0 {
		return fmt.Errorf("%d requests failed", uncached.failures+cached.failures)
	}
	return nil
}

// sessionBench streams one generated trace through the session API and
// compares the incremental re-solve cost against the one-shot solve of
// the same full trace.
func sessionBench(w io.Writer, solver, gen string, tasks, steps, switches, batch, workers int, noPrune bool) error {
	stream, err := workload.Streaming(workload.StreamConfig{
		Workload:  workload.Config{Tasks: tasks, Steps: steps, Switches: switches},
		Generator: gen,
		MeanBatch: batch,
	})
	if err != nil {
		return err
	}
	srv := service.New(service.Config{Workers: workers})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		httpSrv.Shutdown(ctx)
	}()

	if err := preflightSolver(http.DefaultClient, base, solver); err != nil {
		return err
	}
	wire := service.WireInstanceFrom(stream.Instance)
	opts := service.WireOptions{DisablePruning: noPrune}
	call := func(url string, body any, out any) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(data))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, raw)
		}
		return json.Unmarshal(raw, out)
	}

	initial := len(stream.Initial)
	var st service.SessionStatus
	if err := call(base+"/v1/sessions", service.SessionRequest{
		Solver:   solver,
		Instance: &service.WireInstance{Tasks: wire.Tasks, Reqs: wire.Reqs[:initial]},
		Options:  opts,
	}, &st); err != nil {
		return err
	}

	start := time.Now()
	var incremental int64
	step := initial
	for _, b := range stream.Batches {
		if err := call(base+"/v1/sessions/"+st.ID+"/steps", service.SessionSteps{
			Reqs: wire.Reqs[step : step+len(b.Rows)],
		}, &st); err != nil {
			return err
		}
		step += len(b.Rows)
		incremental += st.ResolveExpanded
	}
	streamElapsed := time.Since(start)

	start = time.Now()
	var job service.JobStatus
	if err := call(base+"/v1/solve", service.SolveRequest{Solver: solver, Instance: wire, Options: opts}, &job); err != nil {
		return err
	}
	oneShotElapsed := time.Since(start)
	if job.Result == nil || st.Result == nil {
		return fmt.Errorf("missing result: session=%v one-shot=%v", st.Result, job.Result)
	}
	if job.Result.Cost != st.Result.Cost {
		return fmt.Errorf("session cost %d != one-shot cost %d", st.Result.Cost, job.Result.Cost)
	}

	fromScratch := job.Result.Stats.StatesExpanded
	fmt.Fprintf(w, "hyperd bench -sessions: solver=%s gen=%s m=%d n=%d l=%d batch=%d pruning=%v\n",
		solver, gen, tasks, steps, switches, batch, !noPrune)
	fmt.Fprintf(w, "streamed %d batches over %d steps in %v; final cost %d matches one-shot (%v)\n",
		len(stream.Batches), steps, streamElapsed.Round(time.Millisecond), st.Result.Cost, oneShotElapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "states expanded: one-shot=%d incremental-total=%d last-batch=%d (one-shot/last = %.1fx)\n",
		fromScratch, incremental, st.ResolveExpanded, ratio(fromScratch, st.ResolveExpanded))
	fmt.Fprintf(w, "streaming the whole trace cost %.1fx one state-expansion budget (1.0 = free, %d batches)\n",
		float64(incremental)/float64(max64(fromScratch, 1)), len(stream.Batches))
	return nil
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// preflightSolver asks the daemon which solvers it registers (GET
// /v1/solvers) before driving load at it, failing fast with the
// server's own list instead of hammering it with unknown-solver
// errors.
func preflightSolver(client *http.Client, base, solver string) error {
	resp, err := client.Get(base + "/v1/solvers")
	if err != nil {
		return fmt.Errorf("preflight /v1/solvers: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("preflight /v1/solvers: status %d", resp.StatusCode)
	}
	var sr service.SolversResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("preflight /v1/solvers: %w", err)
	}
	names := make([]string, 0, len(sr.Solvers))
	for _, s := range sr.Solvers {
		if s.Name == solver {
			return nil
		}
		names = append(names, s.Name)
	}
	return fmt.Errorf("preflight: solver %q not registered on the daemon (registered: %s)",
		solver, strings.Join(names, ", "))
}

// phase drives concurrent POSTs for the given duration and tallies
// successes; body-construction errors abort the phase.
func phase(conc int, d time.Duration, makeBody func() ([]byte, error), post func([]byte) error) (benchResult, error) {
	var res benchResult
	var firstErr error
	var errOnce sync.Once
	deadline := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				body, err := makeBody()
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				if err := post(body); err != nil {
					atomic.AddInt64(&res.failures, 1)
					continue
				}
				atomic.AddInt64(&res.requests, 1)
			}
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res, firstErr
}
