package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/durable"
	"repro/internal/service"
	"repro/internal/workload"
)

// restartBenchOpts parameterizes hyperd bench -restart-midway: a
// durable daemon is loaded with distinct solves and one streaming
// session, crashed in-process the way kill -9 would, and restarted on
// the same data directory.  The bench reports how long the restart
// takes to reach "ready" and how much of the pre-crash work survives.
type restartBenchOpts struct {
	solver   string
	gen      string
	tasks    int
	steps    int
	switches int
	workers  int
	jobs     int
	fsync    durable.FsyncPolicy
	jsonPath string
}

// restartBenchReport is the JSON shape written by -json.
type restartBenchReport struct {
	Solver       string  `json:"solver"`
	Gen          string  `json:"gen"`
	Jobs         int     `json:"jobs"`
	Fsync        string  `json:"fsync"`
	LoadSeconds  float64 `json:"load_seconds"`
	ReadySeconds float64 `json:"ready_seconds"`
	WarmHits     int     `json:"warm_hits"`
	WarmHitRatio float64 `json:"warm_hit_ratio"`
	ByteMatches  int     `json:"byte_identical_schedules"`
	SessionAlive bool    `json:"session_revived"`
	SessionSteps int     `json:"session_steps"`
}

type solveReply struct {
	CacheHit bool            `json:"cache_hit"`
	Result   json.RawMessage `json:"result"`
}

func restartBench(w io.Writer, o restartBenchOpts) error {
	generate, ok := workload.Generators()[o.gen]
	if !ok {
		return fmt.Errorf("unknown generator %q", o.gen)
	}
	dir, err := os.MkdirTemp("", "hyperd-restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := service.Config{
		Workers:      o.workers,
		QueueDepth:   4096,
		CacheEntries: 1 << 20,
		DataDir:      dir,
		Fsync:        o.fsync,
	}
	start := func() (*service.Server, *http.Server, net.Listener, string, error) {
		srv, err := service.Open(cfg)
		if err != nil {
			return nil, nil, nil, "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, "", err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		return srv, httpSrv, ln, "http://" + ln.Addr().String(), nil
	}

	client := &http.Client{}
	postJSON := func(base, path string, body any, out any) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, raw)
		}
		if out != nil {
			return json.Unmarshal(raw, out)
		}
		return nil
	}

	makeReq := func(seed int64) (*service.SolveRequest, error) {
		mt, err := generate(workload.Config{
			Tasks: o.tasks, Steps: o.steps, Switches: o.switches, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		return &service.SolveRequest{Solver: o.solver, Instance: service.WireInstanceFrom(mt)}, nil
	}

	fmt.Fprintf(w, "hyperd bench -restart-midway: solver=%s gen=%s m=%d n=%d l=%d jobs=%d fsync=%s\n",
		o.solver, o.gen, o.tasks, o.steps, o.switches, o.jobs, o.fsync)

	// ---- Run A: load, then crash. -------------------------------------
	srvA, httpA, lnA, baseA, err := start()
	if err != nil {
		return err
	}
	loadStart := time.Now()
	oracle := make([]json.RawMessage, o.jobs)
	for i := 0; i < o.jobs; i++ {
		req, err := makeReq(int64(i + 1))
		if err != nil {
			return err
		}
		var rep solveReply
		if err := postJSON(baseA, "/v1/solve", req, &rep); err != nil {
			return fmt.Errorf("pre-crash solve %d: %w", i, err)
		}
		oracle[i] = rep.Result
	}

	// One streaming session: open on a trace prefix, stream the rest in
	// two batches, and leave it live when the crash lands.
	sessMT, err := generate(workload.Config{Tasks: o.tasks, Steps: 8, Switches: o.switches, Seed: -7})
	if err != nil {
		return err
	}
	wi := service.WireInstanceFrom(sessMT)
	open := *wi
	open.Reqs = wi.Reqs[:4]
	var sess service.SessionStatus
	if err := postJSON(baseA, "/v1/sessions", &service.SessionRequest{
		Solver: "exact", Instance: &open,
	}, &sess); err != nil {
		return fmt.Errorf("pre-crash session: %w", err)
	}
	for _, cut := range [][2]int{{4, 6}, {6, 8}} {
		if err := postJSON(baseA, "/v1/sessions/"+sess.ID+"/steps",
			&service.SessionSteps{Reqs: wi.Reqs[cut[0]:cut[1]]}, &sess); err != nil {
			return fmt.Errorf("pre-crash steps: %w", err)
		}
	}
	loadElapsed := time.Since(loadStart)

	srvA.Abandon()
	httpA.Close()
	lnA.Close()

	// ---- Run B: restart on the same directory, measure recovery. ------
	readyStart := time.Now()
	srvB, err := service.Open(cfg)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	for srvB.Health().State != "ready" {
		time.Sleep(2 * time.Millisecond)
	}
	readyElapsed := time.Since(readyStart)

	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpB := &http.Server{Handler: srvB.Handler()}
	go httpB.Serve(lnB)
	baseB := "http://" + lnB.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srvB.Shutdown(ctx)
		httpB.Shutdown(ctx)
		lnB.Close()
	}()

	warmHits, byteMatches := 0, 0
	for i := 0; i < o.jobs; i++ {
		req, err := makeReq(int64(i + 1))
		if err != nil {
			return err
		}
		var rep solveReply
		if err := postJSON(baseB, "/v1/solve", req, &rep); err != nil {
			return fmt.Errorf("post-crash solve %d: %w", i, err)
		}
		if rep.CacheHit {
			warmHits++
		}
		if bytes.Equal(rep.Result, oracle[i]) {
			byteMatches++
		}
	}

	// The session must still answer, with its full pre-crash trace, and
	// accept another batch (proving the engine revived, not just the
	// metadata).
	revived := false
	var after service.SessionStatus
	resp, err := client.Get(baseB + "/v1/sessions/" + sess.ID)
	if err == nil {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && json.Unmarshal(raw, &after) == nil {
			revived = after.Steps == sess.Steps
		}
	}

	ratio := float64(warmHits) / float64(o.jobs)
	fmt.Fprintf(w, "load:     %d solves + 1 session in %v\n", o.jobs, loadElapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "recovery: ready in %v\n", readyElapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "warm:     %d/%d cache hits (%.0f%%), %d/%d byte-identical schedules\n",
		warmHits, o.jobs, 100*ratio, byteMatches, o.jobs)
	fmt.Fprintf(w, "session:  revived=%v steps=%d/%d\n", revived, after.Steps, sess.Steps)

	if o.jsonPath != "" {
		rep := restartBenchReport{
			Solver: o.solver, Gen: o.gen, Jobs: o.jobs, Fsync: o.fsync.String(),
			LoadSeconds: loadElapsed.Seconds(), ReadySeconds: readyElapsed.Seconds(),
			WarmHits: warmHits, WarmHitRatio: ratio, ByteMatches: byteMatches,
			SessionAlive: revived, SessionSteps: after.Steps,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := durable.AtomicWrite(o.jsonPath, append(data, '\n')); err != nil {
			return err
		}
		fmt.Fprintf(w, "report:   %s\n", o.jsonPath)
	}
	if warmHits == 0 {
		return fmt.Errorf("no warm cache hits after restart: recovery failed")
	}
	if !revived {
		return fmt.Errorf("session %s did not survive the restart", sess.ID)
	}
	return nil
}
