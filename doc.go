// Package repro is a Go reproduction of "Models and Reconfiguration
// Problems for Multi Task Hyperreconfigurable Architectures" (Sebastian
// Lange and Martin Middendorf, IPPS 2004).
//
// The library lives under internal/: cost models (internal/model), the
// single-task solvers (internal/phc), the multi-task solvers
// (internal/mtswitch), the genetic algorithm (internal/ga), the SHyRA
// simulator (internal/shyra), applications (internal/apps), the
// barrier-synchronized runtime (internal/machine) and the high-level
// facade (internal/core).  Executables live under cmd/, runnable
// examples under examples/, and bench_test.go in this directory
// regenerates every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured numbers.
package repro
