#!/usr/bin/env sh
# Regenerates the recorded bench baseline, or checks the current tree
# against it.
#
#   scripts/bench.sh            regenerate the committed artifacts
#   scripts/bench.sh --check    rerun the benchmarks and fail (exit 1)
#                               on a >10% ns/op regression against
#                               scripts/bench_baseline.txt
#
# The regenerate mode writes five artifacts, all committed:
#
#   BENCH_PR3.json            frontier-engine comparison (reference DP
#                             vs packed engine at Workers=1 and
#                             Workers=GOMAXPROCS, pruning disabled)
#                             with ns/op, allocs/op and the
#                             speedup/alloc ratios; produced by
#                             `paperbench -bench` on the fixed-seed
#                             BenchmarkScalingTasks m=4 workload.
#   BENCH_PR5.json            pruned-search comparison (packed engine
#                             with pruning off vs on) on the phased
#                             m=4 and dense workloads, plus the
#                             memory-budget scenario where pruning
#                             restores exactness; produced by
#                             `paperbench -bench5` (EXPERIMENTS.md E17).
#   BENCH_PR6.json            incremental-solve comparison: states
#                             expanded appending the final 10% of a
#                             dense trace to a solved stepped engine vs
#                             re-solving from scratch; produced by
#                             `paperbench -bench6` (EXPERIMENTS.md E18).
#   BENCH_PR8.json            partition-and-conquer comparison:
#                             monolithic pruned exact engine vs the
#                             partitioned solver on cut-free blocked
#                             workloads, plus the memory-budget and
#                             certified-bound scenarios; produced by
#                             `paperbench -bench8` (EXPERIMENTS.md E20).
#   BENCH_PR9.json            durability overhead (fsync modes vs
#                             in-memory) and crash-recovery gates;
#                             produced by `paperbench -bench9`
#                             (EXPERIMENTS.md E21).
#   BENCH_PR10.json           portfolio racing: mixed-workload
#                             head-to-head with learned dispatch,
#                             the incumbent-exchange state-reduction
#                             probe and the direct-dispatch rate;
#                             produced by `paperbench -bench10`
#                             (EXPERIMENTS.md E22).
#
# BENCH_PR7.json (cluster-mode routing, EXPERIMENTS.md E19) is
# regenerated separately by `go run ./cmd/hyperd bench -cluster -json
# BENCH_PR7.json`; --check still requires it to be present.
#
# Every JSON row records pruning_enabled explicitly, so --check and any
# downstream diffing compare like with like.
#   scripts/bench_baseline.txt raw `go test -bench` output of the
#                             frontier/scaling benchmarks, the input of
#                             the --check mode and of CI's
#                             informational benchstat step.
set -eu
cd "$(dirname "$0")/.."

BENCH_PATTERN='BenchmarkFrontierEngines|BenchmarkScalingTasks|BenchmarkPartitionedSolve'

if [ "${1:-}" = "--check" ]; then
	# Every committed bench artifact must exist: a silently skipped
	# baseline would let a regression land unnoticed.
	for f in BENCH_PR3.json BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json BENCH_PR9.json BENCH_PR10.json; do
		if [ ! -f "$f" ]; then
			echo "bench.sh --check: committed baseline $f missing; regenerate it (scripts/bench.sh, or hyperd bench -cluster for BENCH_PR7.json)" >&2
			exit 1
		fi
	done
	if [ ! -f scripts/bench_baseline.txt ]; then
		echo "bench.sh --check: scripts/bench_baseline.txt missing; run scripts/bench.sh first" >&2
		exit 1
	fi
	new=$(mktemp /tmp/bench_check.XXXXXX)
	trap 'rm -f "$new"' EXIT
	go test -run '^$' -bench "$BENCH_PATTERN" -benchmem -count 1 . | tee "$new"
	# Join the two runs on benchmark name and compare ns/op (column 3
	# of a `go test -bench` result line). >10% slower fails the check.
	awk '
		FNR == NR {
			if ($2 ~ /^[0-9]+$/ && $4 == "ns/op") base[$1] = $3
			next
		}
		$2 ~ /^[0-9]+$/ && $4 == "ns/op" && ($1 in base) {
			matched++
			ratio = $3 / base[$1]
			printf "%-60s %12.0f -> %12.0f ns/op  (%.2fx)\n", $1, base[$1], $3, ratio
			if (ratio > 1.10) {
				printf "REGRESSION: %s is %.0f%% slower than the baseline\n", $1, (ratio - 1) * 100
				bad++
			}
		}
		END {
			if (matched == 0) {
				print "bench.sh --check: warning: no benchmark names matched the baseline (renamed benchmarks?); nothing compared"
				exit 0
			}
			if (bad > 0) exit 1
		}
	' scripts/bench_baseline.txt "$new"
	echo "bench.sh --check: ok (no >10% ns/op regression)"
	exit 0
fi

go run ./cmd/paperbench -bench -benchout BENCH_PR3.json
go run ./cmd/paperbench -bench5 -bench5out BENCH_PR5.json
go run ./cmd/paperbench -bench6 -bench6out BENCH_PR6.json
go run ./cmd/paperbench -bench8 -bench8out BENCH_PR8.json
go run ./cmd/paperbench -bench9 -bench9out BENCH_PR9.json
go run ./cmd/paperbench -bench10 -bench10out BENCH_PR10.json

go test -run '^$' -bench "$BENCH_PATTERN" \
	-benchmem -count 1 . | tee scripts/bench_baseline.txt
