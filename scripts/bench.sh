#!/usr/bin/env sh
# Regenerates the recorded bench baseline.
#
#   scripts/bench.sh
#
# Writes two artifacts into the repo root, both committed:
#
#   BENCH_PR3.json            frontier-engine comparison (reference DP
#                             vs packed engine at Workers=1 and
#                             Workers=GOMAXPROCS) with ns/op, allocs/op
#                             and the speedup/alloc ratios; produced by
#                             `paperbench -bench` on the fixed-seed
#                             BenchmarkScalingTasks m=4 workload.
#   scripts/bench_baseline.txt raw `go test -bench` output of the
#                             frontier/scaling benchmarks, the input
#                             CI's informational benchstat step
#                             compares new runs against.
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/paperbench -bench -benchout BENCH_PR3.json

go test -run '^$' -bench 'BenchmarkFrontierEngines|BenchmarkScalingTasks' \
	-benchmem -count 1 . | tee scripts/bench_baseline.txt
