#!/usr/bin/env sh
# Brings up a local hyperd cluster: N nodes in peer-fill mode plus a
# `hyperd route` front door, then waits until every member reports
# healthy.  Ctrl-C (or SIGTERM) tears the whole thing down through the
# daemons' graceful drains.
#
#   scripts/cluster_up.sh               3 nodes on 8081..8083, router on 8078
#   NODES=5 scripts/cluster_up.sh       5 nodes on 8081..8085
#   BASE_PORT=9100 scripts/cluster_up.sh
#
# Once up:
#
#   curl -s http://127.0.0.1:8078/v1/healthz | jq .ring
#   curl -s -X POST -d '{"solver":"aligned","app":"counter"}' \
#        http://127.0.0.1:8078/v1/solve | jq .
#   go run ./cmd/hyperd bench -cluster \
#        -router http://127.0.0.1:8078 -peers "$PEERS"
set -eu
cd "$(dirname "$0")/.."

NODES=${NODES:-3}
BASE_PORT=${BASE_PORT:-8081}
ROUTER_PORT=${ROUTER_PORT:-8078}
BIN=${BIN:-$(mktemp /tmp/hyperd.XXXXXX)}

go build -o "$BIN" ./cmd/hyperd

PEERS=""
i=0
while [ "$i" -lt "$NODES" ]; do
	port=$((BASE_PORT + i))
	PEERS="${PEERS}${PEERS:+,}http://127.0.0.1:${port}"
	i=$((i + 1))
done
echo "cluster_up: members $PEERS" >&2

PIDS=""
cleanup() {
	trap - INT TERM EXIT
	echo "cluster_up: stopping" >&2
	for pid in $PIDS; do
		kill -TERM "$pid" 2>/dev/null || true
	done
	for pid in $PIDS; do
		wait "$pid" 2>/dev/null || true
	done
}
trap cleanup INT TERM EXIT

i=0
while [ "$i" -lt "$NODES" ]; do
	port=$((BASE_PORT + i))
	"$BIN" -addr "127.0.0.1:${port}" \
		-peers "$PEERS" -self "http://127.0.0.1:${port}" &
	PIDS="$PIDS $!"
	i=$((i + 1))
done
"$BIN" route -addr "127.0.0.1:${ROUTER_PORT}" -peers "$PEERS" &
PIDS="$PIDS $!"

# Wait for the router to see every member healthy.
tries=0
until curl -fsS "http://127.0.0.1:${ROUTER_PORT}/v1/healthz" 2>/dev/null \
	| grep -q '"healthy":true' && \
	! curl -fsS "http://127.0.0.1:${ROUTER_PORT}/v1/healthz" 2>/dev/null \
	| grep -q '"healthy":false'; do
	tries=$((tries + 1))
	if [ "$tries" -gt 100 ]; then
		echo "cluster_up: cluster did not converge" >&2
		exit 1
	fi
	sleep 0.2
done
echo "cluster_up: ready — router http://127.0.0.1:${ROUTER_PORT}, PEERS=$PEERS" >&2

wait
