// Counter reproduces the paper's Section 6 experiment end to end: run
// the 4-bit counter with variable upper bound on the SHyRA simulator,
// extract the m=4 context-requirement sequences, and compare the
// hyperreconfiguration-disabled baseline against the optimal
// single-task schedule and the genetic-algorithm multi-task schedule.
//
//	go run ./examples/counter
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/shyra"
	"repro/internal/solve"
)

func main() {
	a, err := core.RunPaperExperiment(context.Background(), core.Options{
		Granularity: shyra.GranularityDelta, // only changed bits upload
		Solve:       solve.Options{Pop: 100, Generations: 300, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %q on SHyRA: %d reconfiguration steps traced\n\n", a.Trace.Program, a.Trace.Len())

	best := a.Best()
	rows := [][]string{
		report.CostRow("hyperreconfiguration disabled", a.Disabled, a.Disabled, 0),
		report.CostRow("single task optimal (m=1)", a.SingleOpt.Cost, a.Disabled, len(a.SingleOpt.Seg.Starts)),
		report.CostRow("multi task GA (m=4)", a.MultiGA.Cost, a.Disabled, core.HyperCount(a.MultiGA.MTSched)),
		report.CostRow("multi task best", best.Cost, a.Disabled, core.HyperCount(best.MTSched)),
	}
	fmt.Print(report.Table([]string{"schedule", "cost", "% of disabled", "hyper steps"}, rows))

	fmt.Println("\npaper reference: disabled 5280 (100%), single 3761 (71.2%), multi 2813 (53.3%)")
	fmt.Println("\nGA convergence (best cost per generation, every 30th):")
	for gen := 0; gen < len(a.MultiGA.History); gen += 30 {
		fmt.Printf("  gen %3d: %d\n", gen, a.MultiGA.History[gen])
	}

	names := make([]string, a.MT.NumTasks())
	for j, t := range a.MT.Tasks {
		names[j] = t.Name
	}
	fmt.Println("\npartial hyperreconfigurations of the best schedule (Figure 3 style):")
	fmt.Print(report.HyperMap(names, best.MTSched))
}
