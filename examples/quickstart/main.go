// Quickstart: model a single-task hyperreconfigurable machine under the
// Switch cost model and find its optimal hyperreconfiguration schedule.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bitset"
	"repro/internal/model"
	"repro/internal/phc"
	"repro/internal/report"
)

func main() {
	// A machine with 6 reconfigurable switches.  The computation has
	// three phases: routing-heavy (switches 0-3), compute-light
	// (switch 4), then mixed (switches 3-5).
	const switches = 6
	req := func(members ...int) bitset.Set { return bitset.FromMembers(switches, members...) }
	seq := []bitset.Set{
		req(0, 1, 2, 3), req(0, 1, 2), req(1, 2, 3), req(0, 3),
		req(4), req(4), req(4), req(4), req(4),
		req(3, 4, 5), req(3, 5), req(4, 5),
	}

	// Hyperreconfiguring costs W = 4; an ordinary reconfiguration under
	// hypercontext h costs |h| (one unit per available switch).
	ins, err := model.NewSwitchInstance(switches, 4, seq)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sequence of %d context requirements over %d switches, W=%d\n\n", ins.Len(), ins.Universe, ins.W)
	fmt.Printf("hyperreconfiguration disabled: every step uploads all %d switches → cost %d\n",
		ins.Universe, ins.DisabledCost())
	fmt.Printf("hyperreconfigure every step:   cost %d\n\n", ins.EveryStepCost())

	// The polynomial dynamic program finds the optimal partition into
	// hypercontexts.
	sol, err := phc.SolveSwitch(context.Background(), ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal schedule: cost %d with %d hyperreconfigurations\n", sol.Cost, len(sol.Seg.Starts))
	fmt.Println("hyperreconfiguration steps:  " + report.SegmentsLine(ins.Len(), sol.Seg.Starts))
	for k, h := range sol.Hypercontexts {
		seg := sol.Seg.Segments(ins.Len())[k]
		fmt.Printf("  segment %d: steps %d-%d, hypercontext %v (%d switches)\n",
			k, seg[0], seg[1]-1, h, h.Count())
	}

	// Compare with the greedy heuristic.
	greedy, err := phc.Greedy(context.Background(), ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy heuristic: cost %d (%.0f%% above optimal)\n",
		greedy.Cost, 100*float64(greedy.Cost-sol.Cost)/float64(sol.Cost))
}
