// Dagmodel demonstrates the DAG cost model for coarse-grained machines:
// hypercontexts are ordered by computational power in a DAG, every
// hyperreconfiguration costs the same w, and stronger hypercontexts
// make each ordinary reconfiguration more expensive.  The example
// machine offers four routability levels; the computation alternates
// between cheap local routing and occasional global routing.
//
//	go run ./examples/dagmodel
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bitset"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/mtdag"
	"repro/internal/phc"
)

func main() {
	// Context catalog: 0 = local route, 1 = row route, 2 = column
	// route, 3 = global route.
	const contexts = 4
	sat := func(members ...int) bitset.Set { return bitset.FromMembers(contexts, members...) }
	hs := []model.Hypercontext{
		{Name: "local", PerStep: 1, Sat: sat(0)},
		{Name: "row", PerStep: 3, Sat: sat(0, 1)},
		{Name: "col", PerStep: 3, Sat: sat(0, 2)},
		{Name: "global", PerStep: 8, Sat: sat(0, 1, 2, 3)},
	}
	// Precedence DAG: local ≺ row ≺ global, local ≺ col ≺ global.
	g := dag.New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// The computation: mostly local routing, bursts of row/column
	// routing, one global transpose in the middle.
	seq := []int{0, 0, 0, 1, 1, 0, 0, 2, 2, 0, 3, 0, 0, 1, 0, 0, 2, 0, 0, 0}

	gen, err := model.NewGeneralInstance(contexts, hs, seq)
	if err != nil {
		log.Fatal(err)
	}
	ins, err := dag.NewInstance(gen, g, 5) // w = 5 per hyperreconfiguration
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DAG model: %d hypercontexts, w=%d, %d-step computation\n\n", len(hs), ins.W, len(seq))

	ms, err := ins.MinimalSatisfiers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimal satisfiers c(H) per context requirement:")
	names := []string{"local", "row", "col", "global"}
	for c, sats := range ms {
		fmt.Printf("  %-6s →", names[c])
		for _, h := range sats {
			fmt.Printf(" %s", hs[h].Name)
		}
		fmt.Println()
	}

	// Staying in the top hypercontext the whole time.
	stayTop := make([]int, len(seq))
	for i := range stayTop {
		stayTop[i] = 3
	}
	topCost, err := gen.Cost(model.GeneralSchedule{HctxIdx: stayTop})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstay in %q throughout: cost %d\n", hs[3].Name, topCost)

	heur, err := phc.MinimalSatisfierHeuristic(context.Background(), ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal-satisfier heuristic: cost %d\n", heur.Cost)

	opt, err := phc.SolveDAG(context.Background(), ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal schedule (DP): cost %d\n\n", opt.Cost)

	fmt.Println("optimal hypercontext per step:")
	prev := -1
	for i, k := range opt.Schedule.HctxIdx {
		mark := " "
		if k != prev {
			mark = "*" // hyperreconfiguration
		}
		fmt.Printf("  step %2d: context %-6s hypercontext %-6s %s\n", i, names[seq[i]], hs[k].Name, mark)
		prev = k
	}

	// Multi-task DAG model: run two such computations as parallel tasks
	// on a fully synchronized machine with task-parallel uploads.
	fmt.Println("\n--- multi-task DAG model (two tasks, task-parallel uploads) ---")
	mkTask := func(name string, v model.Cost, taskSeq []int) mtdag.Task {
		taskGen, err := model.NewGeneralInstance(contexts, append([]model.Hypercontext(nil), hs...), taskSeq)
		if err != nil {
			log.Fatal(err)
		}
		taskGraph := dag.New(4)
		for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
			if err := taskGraph.AddEdge(e[0], e[1]); err != nil {
				log.Fatal(err)
			}
		}
		inst, err := dag.NewInstance(taskGen, taskGraph, 5)
		if err != nil {
			log.Fatal(err)
		}
		return mtdag.Task{Name: name, V: v, Inst: inst}
	}
	shifted := make([]int, len(seq))
	copy(shifted, seq[5:])
	copy(shifted[len(seq)-5:], seq[:5]) // task B runs the same phases, shifted
	mt, err := mtdag.New([]mtdag.Task{mkTask("A", 3, seq), mkTask("B", 5, shifted)})
	if err != nil {
		log.Fatal(err)
	}
	opt2 := model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}
	joint, err := mtdag.Solve(context.Background(), mt, opt2)
	if err != nil {
		log.Fatal(err)
	}
	per, err := mtdag.SolvePerTask(context.Background(), mt, opt2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint DP over hypercontext vectors: %d\n", joint.Cost)
	fmt.Printf("independent per-task scheduling:    %d (upper bound)\n", per.Cost)
}
