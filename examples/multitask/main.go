// Multitask demonstrates partial hyperreconfiguration on a hand-built
// multi-task machine whose tasks change phase at different times — the
// situation where partially hyperreconfigurable machines beat machines
// that can only hyperreconfigure all tasks at once.  The solved
// schedule is then executed on the barrier-synchronized runtime, whose
// measured cost must equal the model's prediction.
//
//	go run ./examples/multitask
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bitset"
	"repro/internal/ga"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/mtswitch"
	"repro/internal/report"
	"repro/internal/solve"
)

func main() {
	// Task A is big (12 switches, so hyperreconfiguring it costs
	// v_A = 12) but steady: it needs the same two switches throughout.
	// Task B is small (6 switches, v_B = 6) but restless: its working
	// set rotates every four steps, and with task-parallel uploads B's
	// hypercontext size is what every step pays (A's is only 2).
	//
	// A machine that can only hyperreconfigure all tasks together pays
	// max(v_A, v_B) = 12 for every one of B's phase changes — too
	// expensive, so its best move is one big hypercontext for B and a
	// per-step cost of 6.  A partially hyperreconfigurable machine
	// re-fits B alone for v_B = 6 at each phase change and pays 4 per
	// step.
	phase := func(l, n int, members ...int) []bitset.Set {
		out := make([]bitset.Set, n)
		for i := range out {
			out[i] = bitset.FromMembers(l, members...)
		}
		return out
	}
	concat := func(parts ...[]bitset.Set) []bitset.Set {
		var out []bitset.Set
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}

	tasks := []model.Task{
		{Name: "A", Local: 12, V: 12},
		{Name: "B", Local: 6, V: 6},
	}
	reqs := [][]bitset.Set{
		phase(12, 16, 0, 1),
		concat(phase(6, 4, 0, 1, 2, 3), phase(6, 4, 2, 3, 4, 5), phase(6, 4, 0, 1, 4, 5), phase(6, 4, 0, 1, 2, 3)),
	}
	ins, err := model.NewMTSwitchInstance(tasks, reqs)
	if err != nil {
		log.Fatal(err)
	}
	opt := model.CostOptions{HyperUpload: model.TaskParallel, ReconfUpload: model.TaskParallel}

	fmt.Printf("m=%d tasks, n=%d synchronized steps, task-parallel uploads\n\n", ins.NumTasks(), ins.Steps())

	ctx := context.Background()
	aligned, err := mtswitch.SolveAligned(ctx, ins, opt)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := mtswitch.SolveExact(ctx, ins, opt, solve.Options{})
	if err != nil {
		log.Fatal(err)
	}
	gaRes, err := ga.Optimize(ctx, ins, opt, solve.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aligned hyperreconfigurations only: %d\n", aligned.Cost)
	fmt.Printf("partial hyperreconfigurations (exact DP): %d\n", exact.Cost)
	fmt.Printf("partial hyperreconfigurations (GA): %d\n", gaRes.Solution.Cost)
	fmt.Printf("lower bound: %d\n\n", mtswitch.LowerBound(ins, opt))
	if exact.Cost < aligned.Cost {
		fmt.Printf("partial hyperreconfiguration saves %d cost units (%.1f%%) over aligned scheduling\n\n",
			aligned.Cost-exact.Cost, 100*float64(aligned.Cost-exact.Cost)/float64(aligned.Cost))
	}

	fmt.Println("per-task hyperreconfigurations of the exact schedule:")
	fmt.Print(report.HyperMap([]string{"A", "B"}, exact.Schedule))

	// Execute the schedule on the concurrent runtime: one goroutine per
	// task, barrier-synchronized rounds.
	programs, err := machine.FromSchedule(ins, exact.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	m, err := machine.New(ins.Tasks, model.FullySynchronized, opt, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := m.Run(programs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbarrier-synchronized runtime measured cost: %d (model predicted %d)\n", rep.Total, exact.Cost)
	if rep.Total != exact.Cost {
		log.Fatal("runtime and cost model disagree")
	}
}
